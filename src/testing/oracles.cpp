#include "testing/oracles.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

namespace tbd::pt {

// Everything here stays bit-exact against the optimized paths because the
// accumulated quantities are integer-valued doubles below 2^53 (integer
// microseconds, integer work units), whose sums are exact in any order.
// Where a value is genuinely fractional the oracle keeps the exact
// accumulation order and formula of the definition (see oracles.h).

std::vector<double> oracle_load(std::span<const trace::RequestRecord> records,
                                const core::IntervalSpec& spec) {
  std::vector<double> load(spec.count, 0.0);
  if (spec.count == 0) return load;
  const std::int64_t width = spec.width.micros();
  for (std::size_t i = 0; i < spec.count; ++i) {
    const std::int64_t lo = spec.interval_start(i).micros();
    const std::int64_t hi = lo + width;
    double busy_us = 0.0;  // integer-valued
    for (const trace::RequestRecord& r : records) {
      const std::int64_t a = std::max(r.arrival.micros(), lo);
      const std::int64_t d = std::min(r.departure.micros(), hi);
      if (d > a) busy_us += static_cast<double>(d - a);
    }
    load[i] = busy_us / static_cast<double>(width);
  }
  return load;
}

std::vector<double> oracle_throughput(
    std::span<const trace::RequestRecord> records,
    const core::IntervalSpec& spec, const core::ServiceTimeTable& table,
    const core::ThroughputOptions& options) {
  std::vector<double> tput(spec.count, 0.0);
  if (spec.count == 0) return tput;
  double unit_us = options.work_unit_us;
  if (options.mode == core::ThroughputMode::kNormalizedWorkUnits &&
      unit_us <= 0.0) {
    unit_us = table.min_service_us();
    assert(unit_us > 0.0 && "service-time table is empty");
  }
  for (std::size_t i = 0; i < spec.count; ++i) {
    for (const trace::RequestRecord& r : records) {
      if (!spec.contains(r.departure) || spec.index_of(r.departure) != i) {
        continue;
      }
      if (options.mode == core::ThroughputMode::kRequestsCompleted) {
        tput[i] += 1.0;
      } else {
        const double service = table.service_us(r.class_id);
        tput[i] += std::max(1.0, std::round(service / unit_us));
      }
    }
    if (options.per_second) tput[i] /= spec.width.seconds_f();
  }
  return tput;
}

// ---------------------------------------------------------------------------

namespace {

/// Mean slope of d[from..end); 0 when empty (validation helper of III-C).
double naive_suffix_mean(std::span<const double> d, std::size_t from) {
  if (from >= d.size()) return 0.0;
  double s = 0.0;
  for (std::size_t i = from; i < d.size(); ++i) s += d[i];
  return s / static_cast<double>(d.size() - from);
}

/// Rising-region secant slope delta_0 (congestion_point.h).
double naive_delta0(const std::vector<core::LoadBin>& bins,
                    std::span<const double> d, double tp_max,
                    const core::NStarConfig& config) {
  std::size_t half = 1;
  while (half + 1 < bins.size() && bins[half].mean_tput < 0.5 * tp_max) {
    ++half;
  }
  half = std::min(bins.size() - 1,
                  std::max<std::size_t>(
                      half, static_cast<std::size_t>(config.delta0_window)));
  double delta0 = (bins[half].mean_tput - bins[0].mean_tput) /
                  std::max(1e-12, bins[half].load - bins[0].load);
  if (delta0 <= 0.0) {
    const int w = std::min<int>(config.delta0_window, static_cast<int>(d.size()));
    delta0 = 0.0;
    for (int i = 0; i < w; ++i) delta0 += d[static_cast<std::size_t>(i)];
    delta0 /= w;
  }
  return delta0;
}

}  // namespace

core::NStarResult oracle_congestion_point(std::span<const double> load,
                                          std::span<const double> throughput,
                                          const core::NStarConfig& config) {
  assert(config.method == core::NStarMethod::kRobustKnee &&
         "the differential oracle covers the robust-knee estimator only");
  assert(load.size() == throughput.size());
  core::NStarResult result;
  if (load.empty()) return result;

  double n_min = load[0];
  double n_max = load[0];
  for (const double v : load) {
    n_min = std::min(n_min, v);
    n_max = std::max(n_max, v);
  }
  if (n_max <= n_min) {
    result.n_star = n_max;
    return result;
  }

  // Per-bin rescans instead of the single binning pass: bin b's sum adds the
  // same samples in the same ascending-index order, so it is FP-identical.
  const int k = std::max(2, config.bins);
  const double bin_width = (n_max - n_min) / k;
  const auto bin_of = [&](double v) {
    return std::clamp(static_cast<int>((v - n_min) / bin_width), 0, k - 1);
  };
  double carry_sum = 0.0;
  int carry_cnt = 0;
  for (int b = 0; b < k; ++b) {
    for (std::size_t i = 0; i < load.size(); ++i) {
      if (bin_of(load[i]) != b) continue;
      carry_sum += throughput[i];
      ++carry_cnt;
    }
    if (carry_cnt >= config.min_samples_per_bin) {
      core::LoadBin bin;
      bin.load = n_min + (b + 0.5) * bin_width;
      bin.mean_tput = carry_sum / carry_cnt;
      bin.samples = carry_cnt;
      result.bins.push_back(bin);
      carry_sum = 0.0;
      carry_cnt = 0;
    }
  }
  if (result.bins.size() < 4) {
    result.n_star = n_max;
    for (const auto& bin : result.bins) {
      result.tp_max = std::max(result.tp_max, bin.mean_tput);
    }
    return result;
  }

  // TPmax: mean of the top-quintile bin throughputs.
  {
    std::vector<double> tputs;
    for (const auto& bin : result.bins) tputs.push_back(bin.mean_tput);
    std::sort(tputs.begin(), tputs.end());
    const std::size_t top = std::max<std::size_t>(1, tputs.size() / 5);
    double s = 0.0;
    for (std::size_t i = tputs.size() - top; i < tputs.size(); ++i) s += tputs[i];
    result.tp_max = s / static_cast<double>(top);
  }

  // Slopes (Equation 1).
  const auto& bins = result.bins;
  result.slopes.push_back(bins[0].load > 0.0 ? bins[0].mean_tput / bins[0].load
                                             : 0.0);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    const double dl = bins[i].load - bins[i - 1].load;
    result.slopes.push_back(
        dl > 0.0 ? (bins[i].mean_tput - bins[i - 1].mean_tput) / dl : 0.0);
  }

  // Robust knee: 3-bin smoothing (self, left, right — the addition order the
  // estimator uses), first crossing of the knee threshold, flat-tail check.
  std::vector<double> smooth(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    double s = bins[i].mean_tput;
    int n = 1;
    if (i > 0) {
      s += bins[i - 1].mean_tput;
      ++n;
    }
    if (i + 1 < bins.size()) {
      s += bins[i + 1].mean_tput;
      ++n;
    }
    smooth[i] = s / n;
  }
  const double threshold = config.knee_tput_fraction * result.tp_max;
  std::size_t knee = bins.size() - 1;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (smooth[i] >= threshold) {
      knee = i;
      break;
    }
  }
  const double delta0 = naive_delta0(bins, result.slopes, result.tp_max, config);
  const double tail = naive_suffix_mean(result.slopes, knee + 1);
  const bool flat = knee + 1 >= result.slopes.size()
                        ? false
                        : tail < config.tol_factor * delta0;
  if (flat && knee + 1 < bins.size()) {
    result.n_star = bins[knee].load;
    result.converged = true;
  } else {
    result.n_star = bins.back().load;
    result.converged = false;
  }
  return result;
}

std::vector<core::IntervalState> oracle_classify(
    std::span<const double> load, std::span<const double> throughput,
    const core::NStarResult& nstar, const core::DetectorConfig& config) {
  assert(load.size() == throughput.size());
  std::vector<core::IntervalState> states;
  states.reserve(load.size());
  for (std::size_t i = 0; i < load.size(); ++i) {
    core::IntervalState s = core::IntervalState::kNormal;
    if (load[i] <= config.idle_load) {
      s = core::IntervalState::kIdle;
    } else if (load[i] > nstar.n_star) {
      s = throughput[i] <= config.poi_tput_frac * nstar.tp_max
              ? core::IntervalState::kFrozen
              : core::IntervalState::kCongested;
    }
    states.push_back(s);
  }
  return states;
}

std::vector<core::Episode> oracle_episodes(
    std::span<const core::IntervalState> states, std::span<const double> load,
    const core::IntervalSpec& spec) {
  assert(states.size() == load.size());
  const auto hot = [&](std::size_t i) {
    return states[i] == core::IntervalState::kCongested ||
           states[i] == core::IntervalState::kFrozen;
  };
  std::vector<core::Episode> episodes;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (!hot(i) || (i > 0 && hot(i - 1))) continue;  // not a run start
    core::Episode e;
    e.start = spec.interval_start(i);
    std::size_t j = i;
    for (; j < states.size() && hot(j); ++j) {
      e.peak_load = std::max(e.peak_load, load[j]);
      e.contains_freeze |= states[j] == core::IntervalState::kFrozen;
    }
    e.duration = spec.width * static_cast<std::int64_t>(j - i);
    episodes.push_back(e);
  }
  return episodes;
}

core::DetectionResult oracle_detect(
    std::span<const trace::RequestRecord> records,
    const core::IntervalSpec& spec, const core::ServiceTimeTable& table,
    const core::DetectorConfig& config) {
  core::DetectionResult result;
  result.spec = spec;
  result.load = oracle_load(records, spec);
  result.throughput = oracle_throughput(records, spec, table, config.throughput);
  result.nstar =
      oracle_congestion_point(result.load, result.throughput, config.nstar);
  result.states =
      oracle_classify(result.load, result.throughput, result.nstar, config);
  result.episodes = oracle_episodes(result.states, result.load, spec);
  return result;
}

// ---------------------------------------------------------------------------

namespace {

/// Linear-lookup twin of trace::ConcurrencyProfile. The prefix integrals and
/// the prefix-difference split formula are kept (they ARE the definition of
/// the profile's output, and a direct segment sum would not be FP-equal);
/// the binary searches become front-to-back scans.
struct NaiveProfile {
  std::vector<std::int64_t> times;
  std::vector<int> k;
  std::vector<double> queue_us;
  std::vector<double> service_us;

  static double qw(int kk) {
    return kk > 0 ? static_cast<double>(kk - 1) / static_cast<double>(kk) : 0.0;
  }
  static double sw(int kk) {
    return kk > 0 ? 1.0 / static_cast<double>(kk) : 0.0;
  }

  static NaiveProfile build(std::span<const trace::RequestRecord> records) {
    NaiveProfile p;
    if (records.empty()) return p;
    std::vector<std::pair<std::int64_t, int>> edges;
    for (const trace::RequestRecord& r : records) {
      edges.emplace_back(r.arrival.micros(), +1);
      edges.emplace_back(r.departure.micros(), -1);
    }
    std::sort(edges.begin(), edges.end());
    int kk = 0;
    for (std::size_t i = 0; i < edges.size();) {
      const std::int64_t t = edges[i].first;
      while (i < edges.size() && edges[i].first == t) kk += edges[i++].second;
      p.times.push_back(t);
      p.k.push_back(kk);
    }
    p.queue_us.assign(p.times.size(), 0.0);
    p.service_us.assign(p.times.size(), 0.0);
    for (std::size_t i = 0; i + 1 < p.times.size(); ++i) {
      const auto dt = static_cast<double>(p.times[i + 1] - p.times[i]);
      p.queue_us[i + 1] = p.queue_us[i] + dt * qw(p.k[i]);
      p.service_us[i + 1] = p.service_us[i] + dt * sw(p.k[i]);
    }
    return p;
  }

  /// Index of the piece containing `t` (last breakpoint <= t), linearly.
  [[nodiscard]] std::size_t piece(std::int64_t t) const {
    std::size_t i = 0;
    while (i + 1 < times.size() && times[i + 1] <= t) ++i;
    return i;
  }

  [[nodiscard]] trace::ConcurrencyProfile::Split split(TimePoint t0,
                                                       TimePoint t1) const {
    trace::ConcurrencyProfile::Split s;
    if (times.empty()) return s;
    const std::int64_t a = std::max(t0.micros(), times.front());
    const std::int64_t b = std::min(t1.micros(), times.back());
    if (b <= a) return s;
    const std::size_t i0 = piece(a);
    const std::size_t i1 = piece(b == times.back() ? b - 1 : b);
    const auto head = static_cast<double>(a - times[i0]);
    const auto tail = static_cast<double>(b - times[i1]);
    s.queue_us = (queue_us[i1] - queue_us[i0]) - head * qw(k[i0]) +
                 tail * qw(k[i1]);
    s.service_us = (service_us[i1] - service_us[i0]) - head * sw(k[i0]) +
                   tail * sw(k[i1]);
    return s;
  }
};

std::string naive_band_name(double q) {
  const double pct = q * 100.0;
  char buf[32];
  if (std::abs(pct - std::round(pct)) < 1e-9) {
    std::snprintf(buf, sizeof buf, "p%d", static_cast<int>(std::round(pct)));
  } else {
    std::snprintf(buf, sizeof buf, "p%.1f", pct);
  }
  return buf;
}

std::vector<double> naive_default_bounds() {
  std::vector<double> bounds;
  for (double decade = 100.0; decade < 6e7; decade *= 10.0) {
    for (const double m : {1.0, 2.0, 5.0}) {
      const double b = decade * m;
      if (b <= 6e7) bounds.push_back(b);
    }
  }
  bounds.push_back(6e7);
  return bounds;
}

/// obs::snapshot_quantile's formula over a plain bucket-count vector.
double naive_quantile(const std::vector<double>& bounds,
                      const std::vector<std::uint64_t>& counts,
                      std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double within = (rank - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

core::AttributionReport oracle_attribution(
    std::span<const trace::TxnTree> txns,
    std::span<const trace::ServerIndex> servers,
    std::span<const core::DetectionResult> detections,
    std::span<const trace::RequestRecord> all_records,
    const core::AttributionConfig& config) {
  core::AttributionReport report;
  report.band_quantiles = config.band_quantiles;
  report.txns = txns.size();

  // Congested windows per server, straight off the state runs.
  std::map<trace::ServerIndex, std::vector<core::TimeWindow>> windows;
  for (std::size_t s = 0; s < servers.size() && s < detections.size(); ++s) {
    windows.emplace(servers[s], congested_windows(detections[s]));
  }

  // Naive per-server concurrency profiles (same grouping as build_profiles).
  std::map<trace::ServerIndex, trace::RequestLog> by_server;
  for (const trace::RequestRecord& r : all_records) {
    by_server[r.server].push_back(r);
  }
  std::map<trace::ServerIndex, NaiveProfile> profiles;
  for (const auto& [server, log] : by_server) {
    profiles.emplace(server, NaiveProfile::build(log));
  }

  // Band cutoffs from a plain bucket-count latency histogram.
  const std::vector<double> bounds = config.latency_bounds_us.empty()
                                         ? naive_default_bounds()
                                         : config.latency_bounds_us;
  std::vector<std::uint64_t> counts(bounds.size() + 1, 0);
  for (const trace::TxnTree& t : txns) {
    const auto v = static_cast<double>(t.latency().micros());
    std::size_t bucket = bounds.size();  // overflow
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (v <= bounds[i]) {
        bucket = i;
        break;
      }
    }
    ++counts[bucket];
  }
  for (const double q : config.band_quantiles) {
    report.cutoffs_us.push_back(naive_quantile(bounds, counts, txns.size(), q));
  }

  const std::size_t band_count = config.band_quantiles.size() + 1;
  std::vector<std::map<trace::ServerIndex, core::ServerAttribution>> acc(
      band_count);
  report.bands.resize(band_count);
  for (std::size_t b = 0; b < band_count; ++b) {
    if (b < config.band_quantiles.size()) {
      report.bands[b].band = naive_band_name(config.band_quantiles[b]);
      report.bands[b].cutoff_us = report.cutoffs_us[b];
    } else {
      report.bands[b].band = "pmax";
      report.bands[b].cutoff_us = -1.0;
    }
  }

  const std::vector<core::TimeWindow> no_windows;
  for (const trace::TxnTree& t : txns) {
    const auto latency_us = static_cast<double>(t.latency().micros());
    std::size_t band = config.band_quantiles.size();
    for (std::size_t b = 0; b < report.cutoffs_us.size(); ++b) {
      if (latency_us <= report.cutoffs_us[b]) {
        band = b;
        break;
      }
    }
    ++report.bands[band].txns;
    report.bands[band].latency_us += latency_us;
    for (const trace::PathSegment& seg : t.critical_path) {
      const trace::ServerIndex server =
          t.visits[static_cast<std::size_t>(seg.visit)].server;
      const auto pit = profiles.find(server);
      if (pit == profiles.end()) continue;
      const auto total = pit->second.split(seg.start, seg.end);
      const auto wit = windows.find(server);
      const auto& wins = wit != windows.end() ? wit->second : no_windows;
      trace::ConcurrencyProfile::Split in;
      for (const core::TimeWindow& w : wins) {
        if (w.end <= seg.start) continue;
        if (w.start >= seg.end) break;
        const auto s = pit->second.split(std::max(seg.start, w.start),
                                         std::min(seg.end, w.end));
        in.queue_us += s.queue_us;
        in.service_us += s.service_us;
      }
      core::ServerAttribution& a = acc[band][server];
      a.server = server;
      a.queue_in_us += in.queue_us;
      a.queue_out_us += std::max(0.0, total.queue_us - in.queue_us);
      a.service_in_us += in.service_us;
      a.service_out_us += std::max(0.0, total.service_us - in.service_us);
    }
  }
  for (std::size_t b = 0; b < band_count; ++b) {
    for (const auto& [server, a] : acc[b]) report.bands[b].servers.push_back(a);
  }
  return report;
}

// ---------------------------------------------------------------------------

namespace {

/// parse_line's contract: five u64 fields, single commas, blank padding
/// around fields, trailing columns ignored, departure >= arrival.
bool naive_parse_record(std::string_view line, trace::RequestRecord& out) {
  std::uint64_t fields[5];
  const char* p = line.data();
  const char* end = p + line.size();
  for (int f = 0; f < 5; ++f) {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    const auto [next, ec] = std::from_chars(p, end, fields[f]);
    if (ec != std::errc{}) return false;
    p = next;
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (f < 4) {
      if (p >= end || *p != ',') return false;
      ++p;
    }
  }
  out.server = static_cast<trace::ServerIndex>(fields[0]);
  out.class_id = static_cast<trace::ClassId>(fields[1]);
  out.arrival = TimePoint::from_micros(static_cast<std::int64_t>(fields[2]));
  out.departure = TimePoint::from_micros(static_cast<std::int64_t>(fields[3]));
  out.txn = fields[4];
  return out.departure >= out.arrival;
}

bool naive_is_header(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(i).starts_with("server,");
}

}  // namespace

trace::LogIoResult oracle_parse_csv(std::string_view text) {
  constexpr std::size_t kPreview = 80;
  trace::LogIoResult result;
  result.ok = true;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  // getline semantics: every '\n' terminates a line; a trailing fragment
  // without one is still a line; an empty input has no lines.
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        nl == std::string_view::npos ? text.substr(pos)
                                     : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') {
      ++result.skipped_lines;
      continue;
    }
    trace::RequestRecord r;
    if (naive_parse_record(line, r)) {
      result.records.push_back(r);
    } else {
      ++result.skipped_lines;
      if (result.first_bad_line == 0 && !naive_is_header(line)) {
        result.first_bad_line = line_no;
        result.first_bad_text = std::string{line.substr(0, kPreview)};
      }
    }
  }
  return result;
}

trace::RequestLogReadResult oracle_decode_request_log_bin(
    std::string_view bytes) {
  constexpr std::size_t kHeaderSize = 16;
  constexpr std::size_t kRecordSize = 32;
  trace::RequestLogReadResult result;
  const auto u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    }
    return v;
  };
  const auto u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    }
    return v;
  };
  result.input_size = bytes.size();
  if (bytes.size() < kHeaderSize) {
    result.error = "truncated header";
    result.error_offset = bytes.size();
    return result;
  }
  if (bytes.substr(0, 4) != "TBDR") {
    result.error = "bad magic";
    result.error_offset = 0;
    return result;
  }
  if (u32(4) != 1) {
    result.error = "unsupported version";
    result.error_offset = 4;
    return result;
  }
  const std::uint64_t count = u64(8);
  result.header_count = count;
  const std::size_t payload = bytes.size() - kHeaderSize;
  // Divide-first, as the reader does: the count is untrusted, so
  // count * kRecordSize must never be computed before this check.
  if (payload / kRecordSize < count) {
    result.error = "truncated record stream";
    result.error_record = payload / kRecordSize;
    result.error_offset = kHeaderSize + result.error_record * kRecordSize;
    return result;
  }
  if (count * kRecordSize != payload) {
    result.error = "record count disagrees with file size";
    result.error_record = count;
    result.error_offset = kHeaderSize + count * kRecordSize;
    return result;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t off = kHeaderSize + i * kRecordSize;
    trace::RequestRecord r;
    r.server = u32(off);
    r.class_id = u32(off + 4);
    r.arrival =
        TimePoint::from_micros(static_cast<std::int64_t>(u64(off + 8)));
    r.departure =
        TimePoint::from_micros(static_cast<std::int64_t>(u64(off + 16)));
    r.txn = u64(off + 24);
    result.records.push_back(r);
  }
  result.ok = true;
  return result;
}

namespace {

// ---- naive TBDR v2 helpers --------------------------------------------------

/// CRC-32C one bit at a time — the polynomial's definition, no tables.
std::uint32_t naive_crc32c(const char* data, std::size_t size) {
  constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= static_cast<unsigned char>(data[i]);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
  }
  return ~crc;
}

std::uint64_t naive_u64(std::string_view bytes, std::size_t off,
                        std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

std::int64_t naive_unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// LEB128 by definition: per-byte end checks, at most 10 bytes, a
/// continuation bit on the 10th byte is malformed. Returns false on
/// malformed input. (Matches wire::get_varint, including its acceptance of
/// terminating overlong encodings whose high bits fall off.)
bool naive_varint(std::string_view bytes, std::size_t& pos, std::size_t end,
                  std::uint64_t& out) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= end) return false;
    const std::uint64_t b = static_cast<unsigned char>(bytes[pos++]);
    v |= (b & 0x7F) << shift;
    if (b < 0x80) {
      out = v;
      return true;
    }
  }
  return false;  // continuation bit on the 10th byte
}

/// One column block (tag byte + data) decoded to raw wire values.
bool naive_column(std::string_view bytes, std::size_t& pos, std::size_t end,
                  std::size_t n, std::vector<std::uint64_t>& out) {
  out.clear();
  if (pos >= end) return false;
  const auto tag = static_cast<std::uint8_t>(bytes[pos++]);
  if (tag == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t v;
      if (!naive_varint(bytes, pos, end, v)) return false;
      out.push_back(v);
    }
    return true;
  }
  if (tag != 1 && tag != 2 && tag != 4 && tag != 8) return false;
  if ((end - pos) / tag < n) return false;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(naive_u64(bytes, pos, tag));
    pos += tag;
  }
  return true;
}

/// One segment payload decoded to five column vectors; false = corrupt.
bool naive_segment_payload(std::string_view bytes, std::size_t payload_off,
                           std::size_t payload_bytes, std::size_t n,
                           std::vector<std::int64_t>& arrival,
                           std::vector<std::int64_t>& departure,
                           std::vector<trace::ServerIndex>& server,
                           std::vector<trace::ClassId>& class_id,
                           std::vector<trace::TxnId>& txn) {
  std::size_t pos = payload_off;
  const std::size_t end = payload_off + payload_bytes;
  std::vector<std::uint64_t> raw;
  // departure: zigzag seed, zigzag first-delta seed, then delta-of-delta.
  {
    std::uint64_t seed;
    if (!naive_varint(bytes, pos, end, seed)) return false;
    std::uint64_t prev = static_cast<std::uint64_t>(naive_unzigzag(seed));
    departure.push_back(static_cast<std::int64_t>(prev));
    std::uint64_t delta = 0;
    if (n >= 2) {
      if (!naive_varint(bytes, pos, end, seed)) return false;
      delta = static_cast<std::uint64_t>(naive_unzigzag(seed));
      prev += delta;
      departure.push_back(static_cast<std::int64_t>(prev));
    }
    if (!naive_column(bytes, pos, end, n >= 2 ? n - 2 : 0, raw)) return false;
    for (const std::uint64_t v : raw) {
      delta += static_cast<std::uint64_t>(naive_unzigzag(v));
      prev += delta;
      departure.push_back(static_cast<std::int64_t>(prev));
    }
  }
  // arrival: departure minus zigzagged residence.
  if (!naive_column(bytes, pos, end, n, raw)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const auto residence = static_cast<std::uint64_t>(naive_unzigzag(raw[i]));
    arrival.push_back(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(departure[departure.size() - n + i]) -
        residence));
  }
  // server + class_id: plain values, both must fit 32 bits.
  if (!naive_column(bytes, pos, end, n, raw)) return false;
  std::uint64_t wide = 0;
  for (const std::uint64_t v : raw) {
    wide |= v;
    server.push_back(static_cast<trace::ServerIndex>(v));
  }
  if (!naive_column(bytes, pos, end, n, raw)) return false;
  for (const std::uint64_t v : raw) {
    wide |= v;
    class_id.push_back(static_cast<trace::ClassId>(v));
  }
  if ((wide >> 32) != 0) return false;
  // txn: raw seed, then zigzagged deltas.
  {
    std::uint64_t prev;
    if (!naive_varint(bytes, pos, end, prev)) return false;
    txn.push_back(prev);
    if (!naive_column(bytes, pos, end, n - 1, raw)) return false;
    for (const std::uint64_t v : raw) {
      prev += static_cast<std::uint64_t>(naive_unzigzag(v));
      txn.push_back(prev);
    }
  }
  return pos == end;  // the payload must hold nothing else
}

std::string naive_recovery_warning(std::uint64_t sealed,
                                   const std::string& error,
                                   std::size_t error_offset,
                                   std::uint64_t error_segment) {
  std::string w = "recovered " + std::to_string(sealed) + " sealed segment";
  if (sealed != 1) w += 's';
  w += "; dropped tail: " + error + " at byte offset " +
       std::to_string(error_offset) + ", segment " +
       std::to_string(error_segment);
  return w;
}

}  // namespace

trace::SegmentLogReadResult oracle_decode_request_log_v2(
    std::string_view bytes, trace::DecodeMode mode) {
  constexpr std::size_t kFileHeaderSize = 8;
  constexpr std::size_t kSegHeaderSize = 40;
  trace::SegmentLogReadResult result;
  result.input_size = bytes.size();

  // ---- file header ----
  if (bytes.size() < kFileHeaderSize) {
    result.error = "truncated header";
    result.error_offset = bytes.size();
    return result;
  }
  if (bytes.substr(0, 4) != "TBDR") {
    result.error = "bad magic";
    result.error_offset = 0;
    return result;
  }
  if (naive_u64(bytes, 4, 4) != 2) {
    result.error = "unsupported version";
    result.error_offset = 4;
    return result;
  }

  // ---- sequential segment walk: validate header, decode payload ----
  std::vector<std::int64_t> arrival, departure;
  std::vector<trace::ServerIndex> server;
  std::vector<trace::ClassId> class_id;
  std::vector<trace::TxnId> txn;
  std::uint64_t sealed = 0;
  std::string tail_error;  // non-empty = scan stopped before file end
  std::size_t tail_offset = 0;
  std::size_t pos = kFileHeaderSize;
  while (pos < bytes.size()) {
    // Header validation, in the documented order.
    if (bytes.size() - pos < kSegHeaderSize) {
      tail_error = "truncated segment header";
      tail_offset = pos;
      break;
    }
    if (bytes.substr(pos, 4) != "TSEG") {
      tail_error = "bad segment magic";
      tail_offset = pos;
      break;
    }
    const std::uint64_t count = naive_u64(bytes, pos + 4, 4);
    const std::uint64_t payload_bytes = naive_u64(bytes, pos + 8, 8);
    const std::uint64_t payload_crc = naive_u64(bytes, pos + 32, 4);
    const std::uint64_t header_crc = naive_u64(bytes, pos + 36, 4);
    if (naive_crc32c(bytes.data() + pos, kSegHeaderSize - 4) != header_crc) {
      tail_error = "bad segment header checksum";
      tail_offset = pos + kSegHeaderSize - 4;
      break;
    }
    if (count == 0 ? payload_bytes != 0 : payload_bytes < 5 + count * 5) {
      tail_error = "segment record count disagrees with payload size";
      tail_offset = pos + 4;
      break;
    }
    if (payload_bytes > bytes.size() - pos - kSegHeaderSize) {
      tail_error = "truncated segment payload";
      tail_offset = pos + kSegHeaderSize;
      break;
    }
    const std::size_t payload_off = pos + kSegHeaderSize;
    // Payload validation: CRC first, then the structural decode. A bad
    // payload is fatal unless it is the file's final segment and the mode
    // recovers.
    std::string seg_error;
    std::size_t seg_error_offset = 0;
    if (naive_crc32c(bytes.data() + payload_off,
                     static_cast<std::size_t>(payload_bytes)) != payload_crc) {
      seg_error = "bad segment payload checksum";
      seg_error_offset = pos + 32;
    } else if (count != 0) {
      const std::size_t before = arrival.size();
      if (!naive_segment_payload(bytes, payload_off,
                                 static_cast<std::size_t>(payload_bytes),
                                 static_cast<std::size_t>(count), arrival,
                                 departure, server, class_id, txn)) {
        seg_error = "corrupt segment payload";
        seg_error_offset = payload_off;
        arrival.resize(before);
        departure.resize(before);
        server.resize(before);
        class_id.resize(before);
        txn.resize(before);
      }
    }
    if (!seg_error.empty()) {
      const bool is_last = payload_off + payload_bytes == bytes.size();
      if (mode == trace::DecodeMode::kStrict || !is_last) {
        result.error = std::move(seg_error);
        result.error_offset = seg_error_offset;
        result.error_segment = sealed;
        return result;
      }
      result.warning = naive_recovery_warning(sealed, seg_error,
                                              seg_error_offset, sealed);
      result.error_offset = seg_error_offset;
      result.error_segment = sealed;
      break;
    }
    ++sealed;
    pos = payload_off + static_cast<std::size_t>(payload_bytes);
  }
  if (!tail_error.empty()) {
    result.error_offset = tail_offset;
    result.error_segment = sealed;
    if (mode == trace::DecodeMode::kStrict) {
      result.error = std::move(tail_error);
      return result;
    }
    result.warning =
        naive_recovery_warning(sealed, tail_error, tail_offset, sealed);
  }

  result.records.arrival_us.assign(arrival.begin(), arrival.end());
  result.records.departure_us.assign(departure.begin(), departure.end());
  result.records.server.assign(server.begin(), server.end());
  result.records.class_id.assign(class_id.begin(), class_id.end());
  result.records.txn.assign(txn.begin(), txn.end());
  result.ok = true;
  result.segments = sealed;
  return result;
}

}  // namespace tbd::pt
