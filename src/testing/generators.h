// Seeded generators for the correctness harness (tbd::pt).
//
// Every generator draws from an explicit tbd::Rng, so a failing case is
// reproducible from its seed alone (xoshiro256++ is bit-stable across
// platforms). The generators deliberately over-sample the timestamp edge
// cases where fine-grained analyses silently go wrong: exact ties, zero
// duration visits, endpoints snapped to interval boundaries, records
// straddling or spanning the whole grid, and epoch-boundary (t <= 0) times.
//
// Three input families:
//  * request logs + interval grids — feed the load/throughput/N*/episode
//    oracles (testing/oracles.h) and the metamorphic suite;
//  * transaction logs — records nesting into proper visit trees, feed the
//    txn-tree assembly and critical-path attribution oracles;
//  * adversarial CSV text — feeds the parser differential tests and seeds
//    the structure-aware fuzz corpus (fuzz/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/intervals.h"
#include "core/throughput_calculator.h"
#include "trace/records.h"
#include "util/rng.h"

namespace tbd::pt {

struct LogGenConfig {
  std::size_t min_records = 1;
  std::size_t max_records = 160;
  /// Grid anchor; negative exercises pre-epoch timestamps.
  std::int64_t origin_us = 0;
  /// Records mostly land in [origin, origin + horizon).
  std::int64_t horizon_us = 2'000'000;
  /// Interval width of the matching grid (boundary snapping target).
  std::int64_t width_us = 50'000;
  std::uint32_t servers = 1;
  std::uint32_t classes = 5;
  double mean_service_us = 900.0;
  // --- adversarial shape probabilities (per record) ---
  double p_zero_duration = 0.06;  // arrival == departure
  double p_tie = 0.18;            // reuse an already-emitted timestamp
  double p_boundary = 0.12;       // snap endpoints onto interval boundaries
  double p_outside = 0.08;        // arrival before the grid / departure past it
  double p_spanning = 0.02;       // cover the whole grid and then some
  /// Probability the log contains a saturation burst (overlapping requests
  /// piling onto one server -> congestion episodes for the detector).
  double p_burst = 0.4;
};

/// The interval grid matching a LogGenConfig: [origin, origin + horizon)
/// divided into width-sized intervals (partial tail interval dropped, as
/// IntervalSpec::over does).
[[nodiscard]] core::IntervalSpec grid_for(const LogGenConfig& config);

/// Random request log per the config. Records come out in generation order
/// (NOT sorted); departure >= arrival always holds.
[[nodiscard]] trace::RequestLog generate_request_log(
    Rng& rng, const LogGenConfig& config = {});

/// Service-time table with `classes` strictly positive entries.
[[nodiscard]] core::ServiceTimeTable generate_service_table(
    Rng& rng, std::uint32_t classes);

/// Random throughput options (mode / explicit-vs-auto unit / per-second).
[[nodiscard]] core::ThroughputOptions generate_throughput_options(Rng& rng);

// ---------------------------------------------------------------------------

struct TxnGenConfig {
  std::size_t min_txns = 2;
  std::size_t max_txns = 10;
  std::uint32_t servers = 3;
  int max_depth = 3;
  int max_children = 3;
  std::int64_t origin_us = 0;
  std::int64_t horizon_us = 1'000'000;
  /// Probability a generated child visit has zero duration.
  double p_zero_visit = 0.05;
};

/// Records forming well-nested transaction trees: each transaction has one
/// root visit on server 0 and strictly contained, pairwise-disjoint child
/// visits (so time-containment assembly is unambiguous). Sorted by arrival.
[[nodiscard]] trace::RequestLog generate_txn_log(Rng& rng,
                                                 const TxnGenConfig& config = {});

// ---------------------------------------------------------------------------

struct CsvGenConfig {
  std::size_t max_lines = 120;
  double p_comment = 0.06;
  double p_empty = 0.05;
  double p_header = 0.05;
  double p_garbage = 0.10;     // unparseable line
  double p_spaces = 0.15;      // pad fields with spaces/tabs (slow path)
  double p_extra_cols = 0.06;  // trailing columns (ignored by the parser)
  double p_crlf = 0.08;        // "\r\n" line ending (the \r trails field 5)
  double p_huge = 0.05;        // near-u64-max values (overflow cut path)
  double p_bad_order = 0.05;   // departure < arrival (malformed by contract)
  double p_no_final_newline = 0.25;
};

/// Adversarial CSV request-log text exercising both the SWAR fast path and
/// the from_chars fallback, plus every skip/malformed classification.
[[nodiscard]] std::string generate_csv_text(Rng& rng,
                                            const CsvGenConfig& config = {});

}  // namespace tbd::pt
