// Deliberately naive reference implementations ("oracles") of the analysis
// pipeline, for differential testing against the optimized paths.
//
// Each oracle is the O(n·m) transcription of the documented definition —
// per interval, scan every record — with none of the optimized code's
// machinery (no edge sweep, no fusion, no sharding, no prefix integrals with
// binary search, no SWAR). The optimized implementations are checked
// BIT-FOR-BIT against these across thousands of generated cases
// (tests/oracle/), which is achievable because the quantities the sweeps
// accumulate are integer-valued doubles (integer microseconds, integer work
// units): their floating-point sums are exact in any order, so a naive
// re-derivation lands on the identical double before the final division.
//
// Where a computation is inherently non-integer (N* bin means, attribution's
// processor-sharing integrals), the oracle accumulates in the same
// mathematical order the definition forces (ascending interval index /
// ascending time), which pins the optimized path's ordering as part of the
// contract; the attribution oracle additionally evaluates range integrals
// through the same prefix-difference identity ConcurrencyProfile documents,
// since a direct segment sum is not FP-equal to a prefix difference.
//
// N* note: the differential oracle covers NStarMethod::kRobustKnee (the
// default and the one detect_bottlenecks runs); kInterventionWalk's running
// Welford moments have no order-free naive equivalent, so it stays pinned by
// its behavioural unit tests instead.
#pragma once

#include <span>
#include <string_view>

#include "core/attribution.h"
#include "core/congestion_point.h"
#include "core/detector.h"
#include "core/intervals.h"
#include "core/throughput_calculator.h"
#include "trace/log_io.h"
#include "trace/records.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"
#include "trace/txn_tree.h"

namespace tbd::pt {

/// Section III-A by definition: per interval, sum each record's clipped
/// overlap in integer microseconds, divide by the width.
[[nodiscard]] std::vector<double> oracle_load(
    std::span<const trace::RequestRecord> records,
    const core::IntervalSpec& spec);

/// Section III-B by definition: a record's work units land in the interval
/// containing its departure.
[[nodiscard]] std::vector<double> oracle_throughput(
    std::span<const trace::RequestRecord> records,
    const core::IntervalSpec& spec, const core::ServiceTimeTable& table,
    const core::ThroughputOptions& options);

/// Robust-knee N* per the documented algorithm (congestion_point.h), written
/// as direct scans. `config.method` must be kRobustKnee.
[[nodiscard]] core::NStarResult oracle_congestion_point(
    std::span<const double> load, std::span<const double> throughput,
    const core::NStarConfig& config = {});

/// Interval classification by definition (detector.h state table).
[[nodiscard]] std::vector<core::IntervalState> oracle_classify(
    std::span<const double> load, std::span<const double> throughput,
    const core::NStarResult& nstar, const core::DetectorConfig& config = {});

/// Maximal congested/frozen runs by definition.
[[nodiscard]] std::vector<core::Episode> oracle_episodes(
    std::span<const core::IntervalState> states, std::span<const double> load,
    const core::IntervalSpec& spec);

/// Full-pipeline composition of the oracles above (mirrors
/// detect_bottlenecks, which runs the fused sweep internally).
[[nodiscard]] core::DetectionResult oracle_detect(
    std::span<const trace::RequestRecord> records,
    const core::IntervalSpec& spec, const core::ServiceTimeTable& table,
    const core::DetectorConfig& config = {});

/// Critical-path attribution by definition: naive congested windows, naive
/// histogram/quantile band cutoffs, and per-server concurrency step
/// functions rebuilt from the raw records with linear-scan lookups.
/// `all_records` must contain every server's records (as passed to
/// build_profiles on the optimized side).
[[nodiscard]] core::AttributionReport oracle_attribution(
    std::span<const trace::TxnTree> txns,
    std::span<const trace::ServerIndex> servers,
    std::span<const core::DetectionResult> detections,
    std::span<const trace::RequestRecord> all_records,
    const core::AttributionConfig& config = {});

/// CSV request-log semantics by definition (log_io.h header comment):
/// getline splitting, '#' comments, optional header, five uint64 fields with
/// blank padding, ignored trailing columns, departure >= arrival. Returns
/// the same LogIoResult the file loaders produce (ok is always true).
[[nodiscard]] trace::LogIoResult oracle_parse_csv(std::string_view text);

/// TBDR decode by definition: byte-wise little-endian reads, header
/// validation in documented order. Differential against the memcpy fast
/// path of load_request_log_bin.
[[nodiscard]] trace::RequestLogReadResult oracle_decode_request_log_bin(
    std::string_view bytes);

/// TBDR v2 decode by definition (segment_log.h): one sequential pass,
/// byte-wise reads, a bit-at-a-time CRC-32C, per-value varint loops, and
/// columns materialized through plain std::vector appends — none of the
/// optimized decoder's machinery (no slicing-by-8/SSE4.2 CRC, no segment
/// fan-out, no fused sinks, no uninitialized resize). Replicates the full
/// result contract bit for bit: records, ok, error/warning strings,
/// error_offset, error_segment, segments, input_size.
[[nodiscard]] trace::SegmentLogReadResult oracle_decode_request_log_v2(
    std::string_view bytes,
    trace::DecodeMode mode = trace::DecodeMode::kRecoverTail);

}  // namespace tbd::pt
