#include "testing/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>

namespace tbd::pt {

namespace {

/// Snaps `t` to the nearest interval boundary at or below it.
std::int64_t snap(std::int64_t t, const LogGenConfig& c) {
  const std::int64_t rel = t - c.origin_us;
  // Floor division (rel may be negative for pre-grid times).
  std::int64_t k = rel / c.width_us;
  if (rel % c.width_us != 0 && rel < 0) --k;
  return c.origin_us + k * c.width_us;
}

}  // namespace

core::IntervalSpec grid_for(const LogGenConfig& config) {
  return core::IntervalSpec::over(
      TimePoint::from_micros(config.origin_us),
      TimePoint::from_micros(config.origin_us + config.horizon_us),
      Duration::micros(config.width_us));
}

trace::RequestLog generate_request_log(Rng& rng, const LogGenConfig& config) {
  const std::size_t n =
      config.min_records +
      rng.uniform_index(config.max_records - config.min_records + 1);
  trace::RequestLog log;
  log.reserve(n);
  std::vector<std::int64_t> seen_times;  // tie pool
  seen_times.reserve(2 * n);

  // Optional burst: a window where `burst_n` requests all overlap.
  const bool burst = rng.bernoulli(config.p_burst);
  std::int64_t burst_at = 0;
  std::int64_t burst_len = 0;
  std::size_t burst_n = 0;
  if (burst) {
    burst_len = std::max<std::int64_t>(config.width_us * 2, 1);
    burst_at = config.origin_us +
               static_cast<std::int64_t>(rng.uniform_index(static_cast<std::uint64_t>(
                   std::max<std::int64_t>(1, config.horizon_us - burst_len))));
    burst_n = std::min<std::size_t>(n / 2, 12);
  }

  auto draw_time = [&](std::int64_t lo, std::int64_t hi) {
    assert(hi > lo);
    if (!seen_times.empty() && rng.bernoulli(config.p_tie)) {
      const auto t = seen_times[rng.uniform_index(seen_times.size())];
      if (t >= lo && t < hi) return t;
    }
    std::int64_t t = lo + static_cast<std::int64_t>(
                              rng.uniform_index(static_cast<std::uint64_t>(hi - lo)));
    if (rng.bernoulli(config.p_boundary)) t = std::max(lo, snap(t, config));
    return t;
  };

  for (std::size_t i = 0; i < n; ++i) {
    trace::RequestRecord r;
    r.server = static_cast<trace::ServerIndex>(rng.uniform_index(config.servers));
    r.class_id = static_cast<trace::ClassId>(rng.uniform_index(config.classes));
    r.txn = i + 1;

    const std::int64_t grid_lo = config.origin_us;
    const std::int64_t grid_hi = config.origin_us + config.horizon_us;
    std::int64_t a;
    std::int64_t d;
    if (i < burst_n && burst) {
      // Overlapping pile-up: arrivals inside a short window, departures
      // after its end, so concurrency stacks up.
      a = draw_time(burst_at, burst_at + burst_len / 2);
      d = draw_time(burst_at + burst_len / 2, burst_at + 2 * burst_len);
    } else if (rng.bernoulli(config.p_spanning)) {
      a = grid_lo - 1 - static_cast<std::int64_t>(rng.uniform_index(10'000));
      d = grid_hi + 1 + static_cast<std::int64_t>(rng.uniform_index(10'000));
    } else if (rng.bernoulli(config.p_outside)) {
      // Straddle one grid edge, or sit fully outside.
      if (rng.bernoulli(0.5)) {
        a = grid_lo - static_cast<std::int64_t>(rng.uniform_index(100'000)) - 1;
        d = draw_time(std::min(a + 1, grid_lo), grid_lo + config.horizon_us / 4);
      } else {
        a = draw_time(grid_hi - config.horizon_us / 4, grid_hi + 100'000);
        d = a + static_cast<std::int64_t>(rng.exponential(config.mean_service_us));
      }
    } else {
      a = draw_time(grid_lo, grid_hi);
      d = a + static_cast<std::int64_t>(rng.exponential(config.mean_service_us));
    }
    if (rng.bernoulli(config.p_zero_duration)) d = a;
    if (d < a) std::swap(a, d);
    if (rng.bernoulli(config.p_boundary)) d = std::max(a, snap(d, config));

    r.arrival = TimePoint::from_micros(a);
    r.departure = TimePoint::from_micros(d);
    seen_times.push_back(a);
    seen_times.push_back(d);
    log.push_back(r);
  }
  return log;
}

core::ServiceTimeTable generate_service_table(Rng& rng, std::uint32_t classes) {
  std::vector<double> us;
  us.reserve(classes);
  for (std::uint32_t c = 0; c < classes; ++c) {
    us.push_back(100.0 + std::floor(rng.uniform(0.0, 1500.0)));
  }
  return core::ServiceTimeTable{std::move(us)};
}

core::ThroughputOptions generate_throughput_options(Rng& rng) {
  core::ThroughputOptions opts;
  opts.mode = rng.bernoulli(0.5) ? core::ThroughputMode::kNormalizedWorkUnits
                                 : core::ThroughputMode::kRequestsCompleted;
  opts.work_unit_us = rng.bernoulli(0.5) ? 0.0 : std::floor(rng.uniform(50.0, 600.0));
  opts.per_second = rng.bernoulli(0.5);
  return opts;
}

// ---------------------------------------------------------------------------

namespace {

/// Emits a visit on [lo, hi] plus recursively nested, pairwise-disjoint
/// children strictly inside it.
void emit_visits(Rng& rng, const TxnGenConfig& c, trace::TxnId txn,
                 trace::ServerIndex server, std::int64_t lo, std::int64_t hi,
                 int depth, trace::RequestLog& out) {
  trace::RequestRecord r;
  r.server = server;
  r.class_id = static_cast<trace::ClassId>(depth);
  r.arrival = TimePoint::from_micros(lo);
  r.departure = TimePoint::from_micros(hi);
  r.txn = txn;
  out.push_back(r);

  if (depth >= c.max_depth || hi - lo < 8) return;
  const int children = static_cast<int>(rng.uniform_index(
      static_cast<std::uint64_t>(c.max_children) + 1));
  // Children split the strict interior (lo, hi) into disjoint slots.
  std::int64_t cursor = lo + 1;
  for (int k = 0; k < children && cursor + 2 < hi; ++k) {
    const std::int64_t remaining = hi - 1 - cursor;
    if (remaining < 2) break;
    const std::int64_t span =
        1 + static_cast<std::int64_t>(rng.uniform_index(
                static_cast<std::uint64_t>(remaining / 2) + 1));
    std::int64_t child_lo = cursor;
    std::int64_t child_hi = child_lo + span;
    if (rng.bernoulli(c.p_zero_visit)) child_hi = child_lo;
    const auto child_server =
        static_cast<trace::ServerIndex>(rng.uniform_index(c.servers));
    emit_visits(rng, c, txn, child_server, child_lo, child_hi, depth + 1, out);
    cursor = child_hi + 1;
  }
}

}  // namespace

trace::RequestLog generate_txn_log(Rng& rng, const TxnGenConfig& config) {
  const std::size_t txns =
      config.min_txns +
      rng.uniform_index(config.max_txns - config.min_txns + 1);
  trace::RequestLog log;
  for (std::size_t t = 0; t < txns; ++t) {
    const std::int64_t span =
        1'000 + static_cast<std::int64_t>(rng.uniform_index(
                    static_cast<std::uint64_t>(config.horizon_us / 4)));
    const std::int64_t lo =
        config.origin_us +
        static_cast<std::int64_t>(rng.uniform_index(static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, config.horizon_us - span))));
    emit_visits(rng, config, static_cast<trace::TxnId>(t + 1), 0, lo, lo + span,
                0, log);
  }
  std::sort(log.begin(), log.end(),
            [](const trace::RequestRecord& a, const trace::RequestRecord& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.txn < b.txn;
            });
  return log;
}

// ---------------------------------------------------------------------------

std::string generate_csv_text(Rng& rng, const CsvGenConfig& config) {
  const std::size_t lines = rng.uniform_index(config.max_lines + 1);
  std::string out;
  auto number = [&](bool huge) {
    if (huge) {
      // Values near the u64 ceiling stress the fast parser's overflow cut.
      const std::uint64_t v = ~std::uint64_t{0} - rng.uniform_index(1'000'000);
      return std::to_string(v);
    }
    return std::to_string(rng.uniform_index(3'000'000));
  };
  for (std::size_t i = 0; i < lines; ++i) {
    if (rng.bernoulli(config.p_empty)) {
      // empty line
    } else if (rng.bernoulli(config.p_comment)) {
      out += "# comment ";
      out += std::to_string(rng.uniform_index(1000));
    } else if (rng.bernoulli(config.p_header)) {
      if (rng.bernoulli(0.3)) out += "  ";
      out += "server,class,arrival_us,departure_us,txn";
    } else if (rng.bernoulli(config.p_garbage)) {
      static constexpr const char* kGarbage[] = {
          "not,a,record",  "1,2,3",         "1;2;3;4;5", "a,b,c,d,e",
          "1,2,3,4,",      ",1,2,3,4",      "1,,2,3,4",  "-1,2,3,4,5",
          "1,2,3,4,5x,6y", "0x1,2,3,4,5",
      };
      out += kGarbage[rng.uniform_index(std::size(kGarbage))];
    } else {
      const bool huge = rng.bernoulli(config.p_huge);
      std::uint64_t a = rng.uniform_index(3'000'000);
      std::uint64_t d = a + rng.uniform_index(50'000);
      if (rng.bernoulli(config.p_bad_order) && a > 0) {
        d = rng.uniform_index(a);  // departure < arrival: malformed
      }
      const bool pad = rng.bernoulli(config.p_spaces);
      auto field = [&](const std::string& v) {
        if (pad && rng.bernoulli(0.5)) out += rng.bernoulli(0.5) ? " " : "\t";
        out += v;
        if (pad && rng.bernoulli(0.3)) out += " ";
      };
      field(std::to_string(rng.uniform_index(10)));
      out += ",";
      field(std::to_string(rng.uniform_index(8)));
      out += ",";
      field(huge ? number(true) : std::to_string(a));
      out += ",";
      field(huge ? number(true) : std::to_string(d));
      out += ",";
      field(number(rng.bernoulli(0.02)));
      if (rng.bernoulli(config.p_extra_cols)) {
        out += ",extra," + std::to_string(rng.uniform_index(100));
      }
      if (rng.bernoulli(config.p_crlf)) out += "\r";
    }
    const bool last = i + 1 == lines;
    if (!last || !rng.bernoulli(config.p_no_final_newline)) out += "\n";
  }
  return out;
}

}  // namespace tbd::pt
