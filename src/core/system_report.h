// System-level diagnosis: "After we apply the above analysis to each
// component server of an n-tier system, we can detect which servers have
// encountered frequent transient bottlenecks and cause the wide-range
// response time variations of the system." (end of Section III)
//
// Ranks servers by how much transient congestion they exhibit and renders
// the operator-facing verdict.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/detector.h"

namespace tbd::core {

struct ServerVerdict {
  std::string server;
  double congested_fraction = 0.0;
  std::size_t episodes = 0;
  std::size_t frozen_intervals = 0;
  Duration longest_episode;
  double n_star = 0.0;
  bool saturated = false;  // N* converged within the observed range
};

struct SystemReport {
  /// Sorted most-congested first.
  std::vector<ServerVerdict> verdicts;
  /// Index of the primary suspect in `verdicts` (-1 when nothing congests).
  int primary_suspect = -1;
};

/// Builds the ranking from per-server detection results (parallel arrays).
[[nodiscard]] SystemReport rank_bottlenecks(
    std::span<const DetectionResult> results,
    std::span<const std::string> names,
    double min_congested_fraction = 0.01);

/// Multi-line rendering of the ranking.
[[nodiscard]] std::string to_string(const SystemReport& report);

}  // namespace tbd::core
