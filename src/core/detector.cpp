#include "core/detector.h"

#include <algorithm>
#include <cassert>

#include "core/fused_sweep.h"
#include "obs/span.h"

namespace tbd::core {

std::size_t DetectionResult::congested_intervals() const {
  return static_cast<std::size_t>(
      std::count_if(states.begin(), states.end(), [](IntervalState s) {
        return s == IntervalState::kCongested || s == IntervalState::kFrozen;
      }));
}

std::size_t DetectionResult::frozen_intervals() const {
  return static_cast<std::size_t>(std::count(
      states.begin(), states.end(), IntervalState::kFrozen));
}

double DetectionResult::congested_fraction() const {
  return states.empty() ? 0.0
                        : static_cast<double>(congested_intervals()) /
                              static_cast<double>(states.size());
}

Duration DetectionResult::total_congested_time() const {
  return spec.width * static_cast<std::int64_t>(congested_intervals());
}

Duration DetectionResult::longest_episode() const {
  Duration longest;
  for (const auto& e : episodes) longest = std::max(longest, e.duration);
  return longest;
}

std::vector<IntervalState> classify_intervals(std::span<const double> load,
                                              std::span<const double> throughput,
                                              const NStarResult& nstar,
                                              const DetectorConfig& config) {
  assert(load.size() == throughput.size());
  std::vector<IntervalState> states(load.size(), IntervalState::kNormal);
  const double freeze_tput = config.poi_tput_frac * nstar.tp_max;
  for (std::size_t i = 0; i < load.size(); ++i) {
    if (load[i] <= config.idle_load) {
      states[i] = IntervalState::kIdle;
    } else if (load[i] > nstar.n_star) {
      states[i] = throughput[i] <= freeze_tput ? IntervalState::kFrozen
                                               : IntervalState::kCongested;
    }
  }
  return states;
}

std::vector<Episode> extract_episodes(std::span<const IntervalState> states,
                                      std::span<const double> load,
                                      const IntervalSpec& spec) {
  assert(states.size() == load.size());
  std::vector<Episode> episodes;
  std::size_t i = 0;
  while (i < states.size()) {
    if (states[i] != IntervalState::kCongested &&
        states[i] != IntervalState::kFrozen) {
      ++i;
      continue;
    }
    Episode e;
    e.start = spec.interval_start(i);
    std::size_t j = i;
    while (j < states.size() && (states[j] == IntervalState::kCongested ||
                                 states[j] == IntervalState::kFrozen)) {
      e.peak_load = std::max(e.peak_load, load[j]);
      e.contains_freeze |= states[j] == IntervalState::kFrozen;
      ++j;
    }
    e.duration = spec.width * static_cast<std::int64_t>(j - i);
    episodes.push_back(e);
    i = j;
  }
  return episodes;
}

namespace {

// Layout-independent tail of the pipeline: fit N*, classify, extract
// episodes. Both detect_bottlenecks overloads funnel here after the fused
// sweep, so the two layouts cannot drift.
DetectionResult finish_detection(const IntervalSpec& spec,
                                 LoadThroughput series,
                                 const DetectorConfig& config) {
  DetectionResult result;
  result.spec = spec;
  result.load = std::move(series.load);
  result.throughput = std::move(series.throughput);
  {
    TBD_SPAN("detector.fit_n_star");
    result.nstar = estimate_congestion_point(result.load, result.throughput,
                                             config.nstar);
  }
  {
    TBD_SPAN("detector.classify");
    result.states = classify_intervals(result.load, result.throughput,
                                       result.nstar, config);
  }
  {
    TBD_SPAN("detector.episodes");
    result.episodes = extract_episodes(result.states, result.load, spec);
  }
  return result;
}

}  // namespace

DetectionResult detect_bottlenecks(std::span<const trace::RequestRecord> records,
                                   const IntervalSpec& spec,
                                   const ServiceTimeTable& service_times,
                                   const DetectorConfig& config) {
  LoadThroughput series;
  {
    // One fused pass over the record array replaces the separate load and
    // throughput traversals; the outputs are bit-identical (sweep_detail.h).
    TBD_SPAN("detector.load_tput_sweep");
    series =
        compute_load_throughput(records, spec, service_times, config.throughput);
  }
  return finish_detection(spec, std::move(series), config);
}

DetectionResult detect_bottlenecks(const trace::RequestColumnsView& columns,
                                   const IntervalSpec& spec,
                                   const ServiceTimeTable& service_times,
                                   const DetectorConfig& config) {
  LoadThroughput series;
  {
    TBD_SPAN("detector.load_tput_sweep");
    series =
        compute_load_throughput(columns, spec, service_times, config.throughput);
  }
  return finish_detection(spec, std::move(series), config);
}

const char* to_string(IntervalState s) {
  switch (s) {
    case IntervalState::kIdle: return "idle";
    case IntervalState::kNormal: return "normal";
    case IntervalState::kCongested: return "congested";
    case IntervalState::kFrozen: return "frozen";
  }
  return "?";
}

}  // namespace tbd::core
