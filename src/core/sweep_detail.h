// Shared single-pass core of load and throughput calculation.
//
// compute_load (Section III-A), compute_throughput (Section III-B), and the
// fused compute_load_throughput are instantiations of ONE kernel — over
// either record layout — so the fused sweep is bit-identical to the separate
// calculators, and the SoA (columnar) paths are bit-identical to the AoS
// ones, by construction: for each enabled output the same statements execute
// on the same values, layout only changes where a field is loaded from, and
// the disabled half is compiled away.
//
// The kernel replaces the former edge-array sweep (collect +1/-1 concurrency
// change points, sort, integrate) with a direct clipped scatter, which is
// what makes it run at memory-bandwidth speed:
//
//  * Interval clipping is branchless arithmetic (clamp to the grid, index by
//    division); a record that misses the grid contributes an exact 0 instead
//    of taking an early-exit branch.
//  * A record's residence lands directly in the cells it overlaps: partial
//    microseconds into its first and last cell, and — for records crossing
//    more than two cells — a +1/-1 pair in an integer *difference array*
//    whose prefix sum adds one full width to every interior cell. Worst case
//    is O(records + intervals) even when every record spans the whole grid;
//    there is no edge array to build (the old one reserved 2x records and
//    doubled peak sweep memory) and no O(n log n) sort.
//  * Throughput binning indexes a per-class work-unit table computed once
//    per sweep instead of re-deriving round(service/unit) per record.
//  * The pass is cache-tiled: records are consumed in fixed-size tiles, the
//    load loop streaming the arrival+departure column slices and the
//    throughput loop re-reading the departure slice while it is still in L1
//    alongside class_id. Each column therefore streams from memory once per
//    pass.
//
// Bit-exactness argument (the differential oracles in tests/oracle enforce
// it): every accumulated quantity is an integer (integer microseconds of
// residence, integer work units), so per-cell totals are exact in ANY
// accumulation order. Residence is summed in int64 and converted to double
// once at the end — identical to summing the same integers in doubles, as
// long as totals stay below 2^53 (also required by the old path and the
// oracles). The final divisions by the interval width are the same single
// operations as before.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/intervals.h"
#include "core/throughput_calculator.h"
#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::core::detail {

/// Field accessors over the AoS record layout.
struct RecordSweepSource {
  const trace::RequestRecord* records;
  [[nodiscard]] std::int64_t arrival_us(std::size_t i) const {
    return records[i].arrival.micros();
  }
  [[nodiscard]] std::int64_t departure_us(std::size_t i) const {
    return records[i].departure.micros();
  }
  [[nodiscard]] trace::ClassId class_id(std::size_t i) const {
    return records[i].class_id;
  }
};

/// Field accessors over the SoA column layout.
struct ColumnSweepSource {
  const std::int64_t* arrival;
  const std::int64_t* departure;
  const trace::ClassId* cls;
  [[nodiscard]] std::int64_t arrival_us(std::size_t i) const {
    return arrival[i];
  }
  [[nodiscard]] std::int64_t departure_us(std::size_t i) const {
    return departure[i];
  }
  [[nodiscard]] trace::ClassId class_id(std::size_t i) const { return cls[i]; }
};

/// Records per tile. 4096 keeps each column slice (8 B/field) well inside L1
/// while amortizing the loop split between the load and throughput halves.
constexpr std::size_t kSweepTile = 4096;

template <bool kLoad, bool kTput, typename Source>
void sweep_load_throughput_impl(const Source& src, std::size_t n,
                                const IntervalSpec& spec,
                                const ServiceTimeTable* table,
                                const ThroughputOptions* options,
                                std::vector<double>* load_out,
                                std::vector<double>* tput_out) {
  if constexpr (kLoad) load_out->assign(spec.count, 0.0);
  if constexpr (kTput) tput_out->assign(spec.count, 0.0);
  if (spec.count == 0) return;

  const std::int64_t start_us = spec.start.micros();
  const std::int64_t width_us = spec.width.micros();
  const std::size_t count = spec.count;
  const std::int64_t span_us = width_us * static_cast<std::int64_t>(count);
  const std::int64_t end_us = start_us + span_us;

  // Per-class work units, derived once: a request of class c transforms into
  // round(service/unit) work units, >= 1 (Section III-B). Classes outside
  // the table (service time 0) and the plain requests-completed mode both
  // resolve to 1 work unit per request.
  std::vector<double> units_by_class;
  if constexpr (kTput) {
    if (options->mode == ThroughputMode::kNormalizedWorkUnits) {
      double unit_us = options->work_unit_us;
      if (unit_us <= 0.0) {
        unit_us = table->min_service_us();
        assert(unit_us > 0.0 && "service-time table is empty");
      }
      units_by_class.resize(table->classes());
      for (std::size_t c = 0; c < units_by_class.size(); ++c) {
        const double service = table->service_us(static_cast<trace::ClassId>(c));
        units_by_class[c] = std::max(1.0, std::round(service / unit_us));
      }
    }
  }
  const std::size_t n_units = units_by_class.size();
  const double* units = units_by_class.data();

  // Integer accumulators: per-cell residence microseconds, plus a difference
  // array counting records that fully cover a cell (prefix-summed below).
  std::vector<std::int64_t> residence_us;
  std::vector<std::int64_t> full_cover;
  if constexpr (kLoad) {
    residence_us.assign(count, 0);
    full_cover.assign(count + 1, 0);
  }
  double* const tput = kTput ? tput_out->data() : nullptr;

  for (std::size_t tile = 0; tile < n; tile += kSweepTile) {
    const std::size_t tile_end = std::min(n, tile + kSweepTile);

    if constexpr (kLoad) {
      for (std::size_t i = tile; i < tile_end; ++i) {
        // Branchless clip of [arrival, departure) against [start, end): a
        // record outside the grid clamps to an empty range and adds 0.
        const std::int64_t a =
            std::clamp(src.arrival_us(i), start_us, end_us);
        const std::int64_t d =
            std::clamp(src.departure_us(i), start_us, end_us);
        const std::size_t first = std::min<std::size_t>(
            static_cast<std::size_t>((a - start_us) / width_us), count - 1);
        const std::int64_t first_end =
            start_us + width_us * static_cast<std::int64_t>(first + 1);
        if (d <= first_end) {
          // Common case: the clipped record lives inside one cell (d on the
          // cell's end boundary included — its last-cell contribution there
          // would be 0).
          residence_us[first] += d - a;
        } else {
          const std::size_t last = std::min<std::size_t>(
              static_cast<std::size_t>((d - start_us) / width_us), count - 1);
          residence_us[first] += first_end - a;
          residence_us[last] +=
              d - (start_us + width_us * static_cast<std::int64_t>(last));
          // Interior cells get one full width each via the prefix sum.
          ++full_cover[first + 1];
          --full_cover[last];
        }
      }
    }

    if constexpr (kTput) {
      for (std::size_t i = tile; i < tile_end; ++i) {
        // A request counts in the interval containing its departure; one
        // outside the half-open grid contributes an exact +0.0 to a clamped
        // (valid) cell instead of branching away.
        const std::int64_t dep = src.departure_us(i);
        const bool in_grid = dep >= start_us && dep < end_us;
        const std::int64_t off =
            std::clamp<std::int64_t>(dep - start_us, 0, span_us - 1);
        const std::size_t idx = static_cast<std::size_t>(off / width_us);
        const trace::ClassId c = src.class_id(i);
        const double u = c < n_units ? units[c] : 1.0;
        tput[idx] += in_grid ? u : 0.0;
      }
    }
  }

  if constexpr (kLoad) {
    const auto width_d = static_cast<double>(width_us);
    std::int64_t cover = 0;
    for (std::size_t i = 0; i < count; ++i) {
      cover += full_cover[i];
      (*load_out)[i] =
          static_cast<double>(residence_us[i] + cover * width_us) / width_d;
    }
  }

  if constexpr (kTput) {
    if (options->per_second) {
      const double width_s = spec.width.seconds_f();
      for (double& v : *tput_out) v /= width_s;
    }
  }
}

template <bool kLoad, bool kTput>
void sweep_load_throughput(std::span<const trace::RequestRecord> records,
                           const IntervalSpec& spec,
                           const ServiceTimeTable* table,
                           const ThroughputOptions* options,
                           std::vector<double>* load_out,
                           std::vector<double>* tput_out) {
  sweep_load_throughput_impl<kLoad, kTput>(RecordSweepSource{records.data()},
                                           records.size(), spec, table,
                                           options, load_out, tput_out);
}

template <bool kLoad, bool kTput>
void sweep_load_throughput(const trace::RequestColumnsView& columns,
                           const IntervalSpec& spec,
                           const ServiceTimeTable* table,
                           const ThroughputOptions* options,
                           std::vector<double>* load_out,
                           std::vector<double>* tput_out) {
  sweep_load_throughput_impl<kLoad, kTput>(
      ColumnSweepSource{columns.arrival_us.data(), columns.departure_us.data(),
                        columns.class_id.data()},
      columns.size(), spec, table, options, load_out, tput_out);
}

}  // namespace tbd::core::detail
