// Shared single-pass core of load and throughput calculation.
//
// compute_load (Section III-A), compute_throughput (Section III-B), and the
// fused compute_load_throughput are three instantiations of ONE template so
// the fused sweep is bit-identical to the separate calculators by
// construction: for each enabled output the same statements execute in the
// same order on the same values, and the disabled half is compiled away
// (compute_throughput never builds or sorts the edge array; compute_load
// never touches the service-time table).
//
// The fusion is what makes trace->detector a single pass over the record
// array: one traversal clips each record's [arrival, departure) against the
// grid AND bins its completed work units, instead of the detector walking
// the full record array twice.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "core/intervals.h"
#include "core/throughput_calculator.h"
#include "trace/records.h"

namespace tbd::core::detail {

template <bool kLoad, bool kTput>
void sweep_load_throughput(std::span<const trace::RequestRecord> records,
                           const IntervalSpec& spec,
                           const ServiceTimeTable* table,
                           const ThroughputOptions* options,
                           std::vector<double>* load_out,
                           std::vector<double>* tput_out) {
  if constexpr (kLoad) load_out->assign(spec.count, 0.0);
  if constexpr (kTput) tput_out->assign(spec.count, 0.0);
  if (spec.count == 0) return;
  const TimePoint grid_end = spec.end();

  double unit_us = 0.0;
  if constexpr (kTput) {
    unit_us = options->work_unit_us;
    if (options->mode == ThroughputMode::kNormalizedWorkUnits &&
        unit_us <= 0.0) {
      unit_us = table->min_service_us();
      assert(unit_us > 0.0 && "service-time table is empty");
    }
  }

  // Concurrency change points, clipped to the grid.
  struct Edge {
    TimePoint at;
    int delta;
  };
  std::vector<Edge> edges;
  std::size_t spanning = 0;  // active across the whole grid (no edges inside)
  if constexpr (kLoad) edges.reserve(records.size() * 2);

  for (const auto& r : records) {
    if constexpr (kTput) {
      // A request counts in the interval containing its departure.
      if (spec.contains(r.departure)) {
        const std::size_t idx = spec.index_of(r.departure);
        if (options->mode == ThroughputMode::kRequestsCompleted) {
          (*tput_out)[idx] += 1.0;
        } else {
          // A request transforms into round(service/unit) work units, >= 1.
          const double service = table->service_us(r.class_id);
          const double units = std::max(1.0, std::round(service / unit_us));
          (*tput_out)[idx] += units;
        }
      }
    }
    if constexpr (kLoad) {
      if (r.departure <= spec.start || r.arrival >= grid_end) continue;
      const TimePoint a = std::max(r.arrival, spec.start);
      const TimePoint d = std::min(r.departure, grid_end);
      if (a == spec.start && d == grid_end && r.arrival < spec.start &&
          r.departure > grid_end) {
        ++spanning;
        continue;
      }
      edges.push_back(Edge{a, +1});
      edges.push_back(Edge{d, -1});
    }
  }

  if constexpr (kLoad) {
    std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
      if (x.at != y.at) return x.at < y.at;
      return x.delta < y.delta;  // departures before arrivals at the same tick
    });

    // Sweep, accumulating concurrency * dt into the interval cells.
    double conc = static_cast<double>(spanning);
    TimePoint cursor = spec.start;
    std::size_t cell = 0;
    auto accumulate_until = [&](TimePoint until) {
      while (cursor < until) {
        const TimePoint cell_end = spec.interval_start(cell) + spec.width;
        const TimePoint seg_end = std::min(until, cell_end);
        (*load_out)[cell] +=
            conc * static_cast<double>((seg_end - cursor).micros());
        cursor = seg_end;
        if (cursor == cell_end && cell + 1 < spec.count) ++cell;
      }
    };
    for (const auto& e : edges) {
      accumulate_until(e.at);
      conc += e.delta;
    }
    accumulate_until(grid_end);

    const auto width_us = static_cast<double>(spec.width.micros());
    for (double& v : *load_out) v /= width_us;
  }

  if constexpr (kTput) {
    if (options->per_second) {
      const double width_s = spec.width.seconds_f();
      for (double& v : *tput_out) v /= width_s;
    }
  }
}

}  // namespace tbd::core::detail
