#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tbd::core {

std::string summarize(const DetectionResult& result,
                      const std::string& server_name) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "%s: N*=%.1f  TPmax=%.0f/s%s  intervals=%zu  congested=%zu "
                "(%.1f%%)  frozen=%zu\n",
                server_name.c_str(), result.nstar.n_star, result.nstar.tp_max,
                result.nstar.converged ? "" : " (unsaturated)",
                result.states.size(), result.congested_intervals(),
                100.0 * result.congested_fraction(), result.frozen_intervals());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  episodes=%zu  longest=%s  total-congested=%s\n",
                result.episodes.size(),
                result.longest_episode().to_string().c_str(),
                result.total_congested_time().to_string().c_str());
  out += buf;
  return out;
}

std::string ascii_scatter(std::span<const double> load,
                          std::span<const double> tput, double n_star,
                          int width, int height) {
  if (load.empty() || width < 8 || height < 4) return "";
  double lmax = 0.0;
  double tmax = 0.0;
  for (double v : load) lmax = std::max(lmax, v);
  for (double v : tput) tmax = std::max(tmax, v);
  if (lmax <= 0.0 || tmax <= 0.0) return "";

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto put = [&](double x, double y, char c) {
    const int col = std::min(width - 1, static_cast<int>(x / lmax * (width - 1)));
    const int row =
        height - 1 - std::min(height - 1, static_cast<int>(y / tmax * (height - 1)));
    char& cell = grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
    if (cell == ' ' || c == '|') cell = c;
    else if (cell == '.') cell = ':';
    else if (cell == ':') cell = '#';
  };
  for (std::size_t i = 0; i < load.size(); ++i) put(load[i], tput[i], '.');
  if (n_star > 0.0 && n_star <= lmax) {
    for (int r = 0; r < height; ++r) {
      put(n_star, tmax * (height - 1 - r) / (height - 1), '|');
    }
  }

  char head[160];
  std::snprintf(head, sizeof head,
                "  tput (max %.0f) vs load (max %.1f); '|' marks N*=%.1f\n",
                tmax, lmax, n_star);
  std::string out = head;
  for (const auto& row : grid) {
    out += "  ";
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace tbd::core
