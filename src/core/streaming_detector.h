// Online (streaming) transient-bottleneck detection.
//
// The batch pipeline in detector.h re-derives N* from the full run; a
// production monitor instead (a) freezes N* and TPmax from a calibration
// window, then (b) classifies each fine interval as its records complete,
// emitting congestion episodes in real time. Records may arrive in
// departure order (the natural order of a passive tap); an interval is
// sealed once a departure lands `lag` past its end, guaranteeing every
// straggler that could still affect its load has been seen.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/congestion_point.h"
#include "core/detector.h"
#include "core/throughput_calculator.h"
#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::core {

class StreamingDetector {
 public:
  struct Config {
    Duration width = Duration::millis(50);
    /// Intervals are sealed once progress passes end-of-interval + lag.
    /// Must exceed the longest plausible request residence.
    Duration lag = Duration::seconds(5);
    DetectorConfig detector;
  };

  /// Fires for every sealed interval.
  using IntervalCallback =
      std::function<void(std::size_t index, double load, double tput,
                         IntervalState state)>;
  /// Fires when a congested run closes.
  using EpisodeCallback = std::function<void(const Episode&)>;
  /// Fires when a congested run *opens* (its first hot interval seals) —
  /// the live-alerting moment; EpisodeCallback only knows at close time.
  using EpisodeOpenCallback =
      std::function<void(std::size_t index, TimePoint start)>;

  /// `nstar` and `service_times` come from a calibration pass (batch
  /// detect_bottlenecks on a representative window).
  StreamingDetector(TimePoint start, Config config, NStarResult nstar,
                    ServiceTimeTable service_times);

  void on_interval(IntervalCallback cb) { interval_cb_ = std::move(cb); }
  void on_episode(EpisodeCallback cb) { episode_cb_ = std::move(cb); }
  void on_episode_open(EpisodeOpenCallback cb) {
    episode_open_cb_ = std::move(cb);
  }

  /// Chaining accessors for instrumentation wrappers (StreamingTelemetry
  /// claims the callbacks and forwards to whatever was installed before).
  [[nodiscard]] const IntervalCallback& interval_callback() const {
    return interval_cb_;
  }
  [[nodiscard]] const EpisodeCallback& episode_callback() const {
    return episode_cb_;
  }
  [[nodiscard]] const EpisodeOpenCallback& episode_open_callback() const {
    return episode_open_cb_;
  }

  /// Feeds one completed request (arrival/departure pair). Departures must
  /// be non-decreasing; out-of-order records within `lag` are fine,
  /// anything older is dropped and counted.
  void push(const trace::RequestRecord& record);

  /// Feeds a chunk of records in order — e.g. one ingest shard or one
  /// fused-sweep batch. Equivalent to calling push() per record.
  void push_batch(std::span<const trace::RequestRecord> records);

  /// Columnar-layout overload: feeds rows of the column buffer in order,
  /// reading only the arrival/departure/class columns. Bit-identical to
  /// pushing the equivalent RequestRecords one by one.
  void push_batch(const trace::RequestColumnsView& columns);

  /// Seals everything up to the high-water mark (end of stream).
  void finish();

  /// Idle-seal: seals every started interval up to and including the one
  /// holding the high-water mark, releasing the open-cell memory of a
  /// stream that stopped sending, but — unlike finish() — leaves the
  /// current episode open: the stream may resume, and a hot run must not
  /// be split by a mere transmission gap. Returns the number of intervals
  /// sealed. Records older than the new sealed horizon are dropped (and
  /// counted) if they arrive later; seal_idle() followed by finish() is
  /// byte-equivalent to finish() alone.
  std::size_t seal_idle();

  /// Rewinds to analyze a new stream starting at `start`: open cells,
  /// episodes, and all counters are cleared; the calibration (N*, TPmax,
  /// service times, work unit) and registered callbacks are kept. A reset
  /// detector is indistinguishable from a freshly constructed one.
  void reset(TimePoint start);

  [[nodiscard]] std::size_t intervals_emitted() const { return emitted_; }
  [[nodiscard]] std::size_t congested_intervals() const { return congested_; }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  [[nodiscard]] const std::vector<Episode>& episodes() const { return episodes_; }

  /// Sealed-interval count per classification, indexed by IntervalState
  /// (kIdle..kFrozen). Sums to intervals_emitted().
  [[nodiscard]] const std::array<std::size_t, 4>& sealed_by_state() const {
    return sealed_by_state_;
  }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] TimePoint start() const { return start_; }
  /// The frozen calibration this detector classifies against.
  [[nodiscard]] const NStarResult& nstar() const { return nstar_; }

  // Freshness accessors (the self-observability surface): how far the
  // stream has been ingested and how far behind sealing is running.

  /// Ingest watermark: latest departure timestamp pushed so far.
  [[nodiscard]] TimePoint high_water() const { return high_water_; }
  /// Everything strictly before this instant is sealed and classified —
  /// grid start plus width x (lowest unsealed interval index). finish()
  /// can push this past high_water() (the tail interval seals whole).
  [[nodiscard]] TimePoint sealed_through() const {
    return start_ + config_.width * static_cast<std::int64_t>(first_open_);
  }
  /// Interval cells currently buffered awaiting their seal; bounds the
  /// detector's transient memory and, x width, its reporting latency.
  [[nodiscard]] std::size_t open_intervals() const {
    return open_cells_.size();
  }

 private:
  struct Cell {
    double residence_us = 0.0;  // concurrency integral contribution
    double work_units = 0.0;
  };

  [[nodiscard]] std::size_t cell_index(TimePoint t) const;
  Cell& cell_at(std::size_t index);
  void seal_up_to(std::size_t index);
  /// Field-level core of push(); both layouts feed it the same values.
  void push_fields(TimePoint arrival, TimePoint departure,
                   trace::ClassId class_id);

  Config config_;
  NStarResult nstar_;
  ServiceTimeTable service_times_;
  double work_unit_us_;
  TimePoint start_;
  std::size_t first_open_ = 0;     // lowest unsealed interval index
  std::deque<Cell> open_cells_;    // cells [first_open_, ...)
  TimePoint high_water_;           // latest departure seen

  IntervalCallback interval_cb_;
  EpisodeCallback episode_cb_;
  EpisodeOpenCallback episode_open_cb_;
  std::optional<Episode> current_episode_;
  std::vector<Episode> episodes_;
  std::size_t emitted_ = 0;
  std::size_t congested_ = 0;
  std::size_t dropped_ = 0;
  std::array<std::size_t, 4> sealed_by_state_{};
};

}  // namespace tbd::core
