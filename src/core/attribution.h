// Critical-path latency attribution against detected congestion episodes —
// the quantitative version of the paper's Figure 1/9 story: the requests in
// the long response-time tail are the ones whose queue-wait concentrates
// inside a server's transient-bottleneck episodes.
//
// Input: transaction trees (trace/txn_tree.h) whose critical paths tile each
// transaction's end-to-end latency, per-server concurrency profiles, and the
// per-server detection results (core/detector.h) whose congested/frozen
// intervals define the "in episode" windows. Each critical-path segment is
// split four ways — queue vs service (processor-sharing weights), inside vs
// outside episodes — and accumulated per (response-time percentile band,
// server). Band cutoffs come from an obs::Histogram of latencies via
// snapshot_quantile().
//
// Output is exactly reproducible: fixed-precision NDJSON / CSV writers, and
// every reduction runs in a deterministic order regardless of thread count
// (pinned by FlightRecorderTest.AttributionIsThreadCountInvariant).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/detector.h"
#include "trace/txn_tree.h"

namespace tbd::core {

struct AttributionConfig {
  /// Band upper quantiles; txns sort into the first band whose cutoff covers
  /// their latency, the rest land in the final "pmax" band.
  std::vector<double> band_quantiles{0.5, 0.9, 0.95, 0.99};
  /// Latency histogram bucket bounds in microseconds; empty selects a
  /// log-spaced default grid (100us .. 60s).
  std::vector<double> latency_bounds_us;
};

/// One server's share of one band's latency, split queue/service and
/// in/out of that server's congestion episodes. All in microseconds.
struct ServerAttribution {
  trace::ServerIndex server = 0;
  double queue_in_us = 0.0;     // queued at the server, inside an episode
  double queue_out_us = 0.0;    // queued, outside episodes
  double service_in_us = 0.0;   // served, inside an episode
  double service_out_us = 0.0;  // served, outside episodes
  [[nodiscard]] double total_us() const {
    return queue_in_us + queue_out_us + service_in_us + service_out_us;
  }
};

struct BandAttribution {
  std::string band;         // "p50", "p90", "p95", "p99", "pmax"
  double cutoff_us = 0.0;   // upper latency cutoff; <0 = unbounded (pmax)
  std::uint64_t txns = 0;
  double latency_us = 0.0;  // summed end-to-end latency of the band's txns
  std::vector<ServerAttribution> servers;  // ascending server id
};

struct AttributionReport {
  std::uint64_t txns = 0;
  std::vector<double> band_quantiles;  // as configured
  std::vector<double> cutoffs_us;      // quantile cutoffs, one per quantile
  std::vector<BandAttribution> bands;  // band order: p50 .. pmax
};

/// Servers/detections/profiles are parallel spans describing the same
/// ascending server-id order (profiles may cover more servers than spans).
[[nodiscard]] AttributionReport attribute_latency(
    std::span<const trace::TxnTree> txns,
    std::span<const trace::ServerIndex> servers,
    std::span<const DetectionResult> detections,
    const trace::ProfileMap& profiles, const AttributionConfig& config = {});

/// Maximal congested/frozen runs of a detection as closed time windows.
[[nodiscard]] std::vector<TimeWindow> congested_windows(
    const DetectionResult& detection);

/// NDJSON: one "meta" record, then one "band" record per band, then one
/// "band_server" record per (band, server). Fixed precision, deterministic.
[[nodiscard]] std::string attribution_ndjson(const AttributionReport& report);
bool write_attribution_ndjson(const std::string& path,
                              const AttributionReport& report);

/// CSV: band,server,txns,latency_us,queue_in_episode_us,queue_out_episode_us,
/// service_in_episode_us,service_out_episode_us.
[[nodiscard]] std::string attribution_csv(const AttributionReport& report);
bool write_attribution_csv(const std::string& path,
                           const AttributionReport& report);

}  // namespace tbd::core
