#include "core/interval_selection.h"

#include <algorithm>
#include <cassert>

#include "core/load_calculator.h"
#include "util/stats.h"

namespace tbd::core {

double main_sequence_blur(std::span<const double> load,
                          std::span<const double> tput, int bins) {
  assert(load.size() == tput.size());
  double lmax = 0.0;
  for (double l : load) lmax = std::max(lmax, l);
  if (lmax <= 0.0 || bins < 2) return 0.0;
  std::vector<RunningStats> stats(static_cast<std::size_t>(bins));
  for (std::size_t i = 0; i < load.size(); ++i) {
    auto b = static_cast<int>(load[i] / lmax * (bins - 1));
    stats[static_cast<std::size_t>(std::clamp(b, 0, bins - 1))].add(tput[i]);
  }
  RunningStats cv;
  for (const auto& s : stats) {
    if (s.count() >= 5 && s.mean() > 0.0) cv.add(s.stddev() / s.mean());
  }
  return cv.mean();
}

namespace {

std::size_t count_departures(std::span<const trace::RequestRecord> records,
                             const IntervalSpec& spec) {
  std::size_t departures = 0;
  for (const auto& r : records) {
    if (spec.contains(r.departure)) ++departures;
  }
  return departures;
}

std::size_t count_departures(const trace::RequestColumnsView& columns,
                             const IntervalSpec& spec) {
  std::size_t departures = 0;
  for (const std::int64_t dep : columns.departure_us) {
    if (spec.contains(TimePoint::from_micros(dep))) ++departures;
  }
  return departures;
}

// Shared by the AoS and SoA overloads; the per-width series come from the
// same fused kernel, so both layouts score (and therefore choose)
// identically.
template <typename Log>
IntervalSelection choose_interval_length_impl(
    const Log& records, TimePoint t0, TimePoint t1,
    const ServiceTimeTable& service_times, std::span<const Duration> candidates,
    const IntervalSelectionConfig& config) {
  IntervalSelection selection;
  assert(!candidates.empty());

  for (const Duration width : candidates) {
    const auto spec = IntervalSpec::over(t0, t1, width);
    IntervalCandidate c;
    c.width = width;
    c.intervals = spec.count;
    if (spec.count == 0) {
      selection.candidates.push_back(c);
      continue;
    }
    const auto load = compute_load(records, spec);
    const auto tput =
        compute_throughput(records, spec, service_times, ThroughputOptions{});
    c.blur = main_sequence_blur(load, tput, config.bins);
    for (double l : load) c.load_range = std::max(c.load_range, l);

    c.mean_completions = static_cast<double>(count_departures(records, spec)) /
                         static_cast<double>(spec.count);
    selection.candidates.push_back(c);
  }

  const double finest_range =
      std::max(1e-12, selection.candidates.front().load_range);
  for (auto& c : selection.candidates) c.retention = c.load_range / finest_range;

  // Finest width that is not too blurry and has enough completions per
  // interval; fall back to the coarsest candidate.
  selection.chosen = selection.candidates.back().width;
  for (const auto& c : selection.candidates) {
    if (c.intervals == 0) continue;
    if (c.blur <= config.max_blur &&
        c.mean_completions >= config.min_mean_completions) {
      selection.chosen = c.width;
      break;
    }
  }
  return selection;
}

}  // namespace

IntervalSelection choose_interval_length(
    std::span<const trace::RequestRecord> records, TimePoint t0, TimePoint t1,
    const ServiceTimeTable& service_times,
    std::span<const Duration> candidates,
    const IntervalSelectionConfig& config) {
  return choose_interval_length_impl(records, t0, t1, service_times, candidates,
                                     config);
}

IntervalSelection choose_interval_length(
    const trace::RequestColumnsView& columns, TimePoint t0, TimePoint t1,
    const ServiceTimeTable& service_times,
    std::span<const Duration> candidates,
    const IntervalSelectionConfig& config) {
  return choose_interval_length_impl(columns, t0, t1, service_times, candidates,
                                     config);
}

}  // namespace tbd::core
