#include "core/congestion_point.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace tbd::core {

namespace {

/// Mean of the slopes d[from..end); 0 when empty.
double suffix_slope_mean(const std::vector<double>& d, std::size_t from) {
  if (from >= d.size()) return 0.0;
  double s = 0.0;
  for (std::size_t i = from; i < d.size(); ++i) s += d[i];
  return s / static_cast<double>(d.size() - from);
}

/// Secant slope of the rising region: bin 0 to the first bin reaching 50%
/// of tp_max (at least delta0_window bins ahead when available). Falls back
/// to the mean of the leading slope sequence when degenerate.
double estimate_delta0(const std::vector<LoadBin>& bins,
                       const std::vector<double>& d, double tp_max,
                       const NStarConfig& config) {
  std::size_t half = 1;
  while (half + 1 < bins.size() && bins[half].mean_tput < 0.5 * tp_max) {
    ++half;
  }
  half = std::min(bins.size() - 1,
                  std::max<std::size_t>(
                      half, static_cast<std::size_t>(config.delta0_window)));
  double delta0 = (bins[half].mean_tput - bins[0].mean_tput) /
                  std::max(1e-12, bins[half].load - bins[0].load);
  if (delta0 <= 0.0) {
    const int w = std::min<int>(config.delta0_window, static_cast<int>(d.size()));
    delta0 = 0.0;
    for (int i = 0; i < w; ++i) delta0 += d[static_cast<std::size_t>(i)];
    delta0 /= w;
  }
  return delta0;
}

void robust_knee(NStarResult& result, const NStarConfig& config) {
  const auto& bins = result.bins;
  const auto& d = result.slopes;

  // 3-bin smoothed throughput.
  std::vector<double> smooth(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    double s = bins[i].mean_tput;
    int n = 1;
    if (i > 0) {
      s += bins[i - 1].mean_tput;
      ++n;
    }
    if (i + 1 < bins.size()) {
      s += bins[i + 1].mean_tput;
      ++n;
    }
    smooth[i] = s / n;
  }

  // First crossing of the knee threshold.
  const double threshold = config.knee_tput_fraction * result.tp_max;
  std::size_t knee = bins.size() - 1;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (smooth[i] >= threshold) {
      knee = i;
      break;
    }
  }

  // Validation: beyond the knee the curve must actually be flat (slope
  // small relative to the rising-region slope). Otherwise the server never
  // saturated in this data.
  const double delta0 = estimate_delta0(bins, d, result.tp_max, config);
  const double tail = suffix_slope_mean(d, knee + 1);
  const bool flat = knee + 1 >= d.size()  // knee at the very top: no tail
                        ? false
                        : tail < config.tol_factor * delta0;
  if (flat && knee + 1 < bins.size()) {
    result.n_star = bins[knee].load;
    result.converged = true;
  } else {
    result.n_star = bins.back().load;
    result.converged = false;
  }
}

void intervention_walk(NStarResult& result, const NStarConfig& config) {
  const auto& bins = result.bins;
  const auto& d = result.slopes;
  const double delta0 = estimate_delta0(bins, d, result.tp_max, config);
  const double tol = config.tol_factor * delta0;

  // Both the local window after the trip point AND the remaining suffix
  // must average below the flat threshold: the local check rejects trips
  // diluted by a long flat tail that begins much later; the suffix check
  // rejects one-off noise dips on a curve that keeps climbing.
  const double flat_threshold = config.flat_factor * delta0;
  auto locally_flat = [&](std::size_t from) {
    const std::size_t to =
        std::min(d.size(), from + static_cast<std::size_t>(
                                      std::max(1, config.flat_window)));
    double s = 0.0;
    for (std::size_t i = from; i < to; ++i) s += d[i];
    return s / static_cast<double>(to - from) < flat_threshold &&
           suffix_slope_mean(d, from) < flat_threshold;
  };

  // Running mean / sd over the prefix {delta_1..delta_n0} (Equation 2).
  double mean = d[0];
  double m2 = 0.0;
  for (std::size_t n0 = 2; n0 <= d.size(); ++n0) {
    const double x = d[n0 - 1];
    const double prev_mean = mean;
    mean += (x - mean) / static_cast<double>(n0);
    m2 += (x - prev_mean) * (x - mean);
    const double sd = std::sqrt(m2 / static_cast<double>(n0 - 1));
    const double t = student_t_quantile(config.confidence,
                                        static_cast<int>(n0) - 1);
    if (mean - t * sd < tol && locally_flat(n0 - 1)) {
      // The prefix bound confirms instability a few bins late (it needs
      // enough flat slopes to drag the confidence interval down). Back-scan
      // to where the flat region actually begins.
      std::size_t b = n0 - 1;
      while (b > 0 && d[b] < flat_threshold) --b;
      result.n_star = bins[b].load;
      result.converged = true;
      return;
    }
  }

  // Slopes stayed stable across the whole range: never saturated here.
  result.n_star = bins.back().load;
  result.converged = false;
}

}  // namespace

NStarResult estimate_congestion_point(std::span<const double> load,
                                      std::span<const double> throughput,
                                      const NStarConfig& config) {
  assert(load.size() == throughput.size());
  NStarResult result;
  if (load.empty()) return result;

  // ---- 1. bin the load range and average throughput per bin -------------
  double n_min = load[0];
  double n_max = load[0];
  for (double v : load) {
    n_min = std::min(n_min, v);
    n_max = std::max(n_max, v);
  }
  if (n_max <= n_min) {
    result.n_star = n_max;
    return result;
  }

  const int k = std::max(2, config.bins);
  const double bin_width = (n_max - n_min) / k;
  std::vector<double> sum(static_cast<std::size_t>(k), 0.0);
  std::vector<int> cnt(static_cast<std::size_t>(k), 0);
  for (std::size_t i = 0; i < load.size(); ++i) {
    auto b = static_cast<int>((load[i] - n_min) / bin_width);
    b = std::clamp(b, 0, k - 1);
    sum[static_cast<std::size_t>(b)] += throughput[i];
    ++cnt[static_cast<std::size_t>(b)];
  }

  // Collect sufficiently-populated bins in load order; sparse bins merge
  // into the next populated one.
  double carry_sum = 0.0;
  int carry_cnt = 0;
  for (int b = 0; b < k; ++b) {
    carry_sum += sum[static_cast<std::size_t>(b)];
    carry_cnt += cnt[static_cast<std::size_t>(b)];
    if (carry_cnt >= config.min_samples_per_bin) {
      LoadBin bin;
      bin.load = n_min + (b + 0.5) * bin_width;
      bin.mean_tput = carry_sum / carry_cnt;
      bin.samples = carry_cnt;
      result.bins.push_back(bin);
      carry_sum = 0.0;
      carry_cnt = 0;
    }
  }
  if (result.bins.size() < 4) {
    result.n_star = n_max;
    for (const auto& bin : result.bins) {
      result.tp_max = std::max(result.tp_max, bin.mean_tput);
    }
    return result;
  }

  // Robust TPmax: mean of the top-quintile bin throughputs.
  {
    std::vector<double> tputs;
    tputs.reserve(result.bins.size());
    for (const auto& bin : result.bins) tputs.push_back(bin.mean_tput);
    std::sort(tputs.begin(), tputs.end());
    const std::size_t top = std::max<std::size_t>(1, tputs.size() / 5);
    double s = 0.0;
    for (std::size_t i = tputs.size() - top; i < tputs.size(); ++i) s += tputs[i];
    result.tp_max = s / static_cast<double>(top);
  }

  // ---- 2. slopes (Equation 1) --------------------------------------------
  const auto& bins = result.bins;
  result.slopes.reserve(bins.size());
  result.slopes.push_back(bins[0].load > 0.0 ? bins[0].mean_tput / bins[0].load
                                             : 0.0);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    const double dl = bins[i].load - bins[i - 1].load;
    result.slopes.push_back(
        dl > 0.0 ? (bins[i].mean_tput - bins[i - 1].mean_tput) / dl : 0.0);
  }

  // ---- 3. place N* ---------------------------------------------------------
  if (config.method == NStarMethod::kRobustKnee) {
    robust_knee(result, config);
  } else {
    intervention_walk(result, config);
  }
  return result;
}

}  // namespace tbd::core
