// Human-readable rendering of detection results (what an operator of the
// tool would read) and small scatter/ASCII helpers used by the bench
// binaries to echo the paper's figures into the terminal.
#pragma once

#include <span>
#include <string>

#include "core/detector.h"

namespace tbd::core {

/// Multi-line summary: N*, TPmax, congested fraction, episode stats.
[[nodiscard]] std::string summarize(const DetectionResult& result,
                                    const std::string& server_name);

/// Fixed-size character raster of a load-vs-throughput scatter (the main
/// sequence plot, Figure 5(c)); marks N* with a vertical bar. Purely for
/// terminal inspection — CSV output carries the real data.
[[nodiscard]] std::string ascii_scatter(std::span<const double> load,
                                        std::span<const double> tput,
                                        double n_star, int width = 72,
                                        int height = 20);

}  // namespace tbd::core
