#include "core/throughput_calculator.h"

#include <algorithm>

#include "core/sweep_detail.h"
#include "util/stats.h"

namespace tbd::core {

double ServiceTimeTable::min_service_us() const {
  double best = 0.0;
  for (double us : us_by_class_) {
    if (us > 0.0 && (best == 0.0 || us < best)) best = us;
  }
  return best;
}

void ServiceTimeTable::set(trace::ClassId c, double us) {
  if (c >= us_by_class_.size()) us_by_class_.resize(c + 1, 0.0);
  us_by_class_[c] = us;
}

ServiceTimeTable estimate_service_times(
    std::span<const trace::RequestRecord> records, double mask_quantile) {
  // Pre-scan the class ids so the per-class delay vectors are sized once:
  // the repeated resize-on-growth pattern was measurable on multi-million
  // record production logs.
  std::size_t num_classes = 0;
  for (const auto& r : records) {
    num_classes = std::max<std::size_t>(num_classes, r.class_id + 1);
  }
  std::vector<std::size_t> counts(num_classes, 0);
  for (const auto& r : records) ++counts[r.class_id];

  // Gather intra-node delays per class.
  std::vector<std::vector<double>> delays(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) delays[c].reserve(counts[c]);
  for (const auto& r : records) {
    delays[r.class_id].push_back(
        static_cast<double>((r.departure - r.arrival).micros()));
  }
  std::vector<double> by_class(delays.size(), 0.0);
  for (std::size_t c = 0; c < delays.size(); ++c) {
    if (!delays[c].empty()) {
      by_class[c] = quantile(delays[c], mask_quantile);
    }
  }
  return ServiceTimeTable{std::move(by_class)};
}

std::vector<double> compute_throughput(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options) {
  std::vector<double> tput;
  detail::sweep_load_throughput<false, true>(records, spec, &table, &options,
                                             nullptr, &tput);
  return tput;
}

}  // namespace tbd::core
