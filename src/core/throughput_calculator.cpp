#include "core/throughput_calculator.h"

#include <algorithm>

#include "core/sweep_detail.h"
#include "util/stats.h"

namespace tbd::core {

double ServiceTimeTable::min_service_us() const {
  double best = 0.0;
  for (double us : us_by_class_) {
    if (us > 0.0 && (best == 0.0 || us < best)) best = us;
  }
  return best;
}

void ServiceTimeTable::set(trace::ClassId c, double us) {
  if (c >= us_by_class_.size()) us_by_class_.resize(c + 1, 0.0);
  us_by_class_[c] = us;
}

namespace {

// Shared by the AoS and SoA overloads; `src` is a sweep-source-style field
// accessor so both layouts feed identical delays in identical order.
template <typename Source>
ServiceTimeTable estimate_service_times_impl(const Source& src, std::size_t n,
                                             double mask_quantile) {
  // Pre-scan the class ids so the per-class delay vectors are sized once:
  // the repeated resize-on-growth pattern was measurable on multi-million
  // record production logs.
  std::size_t num_classes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num_classes = std::max<std::size_t>(num_classes, src.class_id(i) + 1);
  }
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[src.class_id(i)];

  // Gather intra-node delays per class.
  std::vector<std::vector<double>> delays(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) delays[c].reserve(counts[c]);
  for (std::size_t i = 0; i < n; ++i) {
    delays[src.class_id(i)].push_back(
        static_cast<double>(src.departure_us(i) - src.arrival_us(i)));
  }
  std::vector<double> by_class(delays.size(), 0.0);
  for (std::size_t c = 0; c < delays.size(); ++c) {
    if (!delays[c].empty()) {
      by_class[c] = quantile(delays[c], mask_quantile);
    }
  }
  return ServiceTimeTable{std::move(by_class)};
}

}  // namespace

ServiceTimeTable estimate_service_times(
    std::span<const trace::RequestRecord> records, double mask_quantile) {
  return estimate_service_times_impl(
      detail::RecordSweepSource{records.data()}, records.size(), mask_quantile);
}

ServiceTimeTable estimate_service_times(const trace::RequestColumnsView& columns,
                                        double mask_quantile) {
  return estimate_service_times_impl(
      detail::ColumnSweepSource{columns.arrival_us.data(),
                                columns.departure_us.data(),
                                columns.class_id.data()},
      columns.size(), mask_quantile);
}

std::vector<double> compute_throughput(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options) {
  std::vector<double> tput;
  detail::sweep_load_throughput<false, true>(records, spec, &table, &options,
                                             nullptr, &tput);
  return tput;
}

std::vector<double> compute_throughput(const trace::RequestColumnsView& columns,
                                       const IntervalSpec& spec,
                                       const ServiceTimeTable& table,
                                       const ThroughputOptions& options) {
  std::vector<double> tput;
  detail::sweep_load_throughput<false, true>(columns, spec, &table, &options,
                                             nullptr, &tput);
  return tput;
}

}  // namespace tbd::core
