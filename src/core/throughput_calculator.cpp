#include "core/throughput_calculator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace tbd::core {

double ServiceTimeTable::min_service_us() const {
  double best = 0.0;
  for (double us : us_by_class_) {
    if (us > 0.0 && (best == 0.0 || us < best)) best = us;
  }
  return best;
}

void ServiceTimeTable::set(trace::ClassId c, double us) {
  if (c >= us_by_class_.size()) us_by_class_.resize(c + 1, 0.0);
  us_by_class_[c] = us;
}

ServiceTimeTable estimate_service_times(
    std::span<const trace::RequestRecord> records, double mask_quantile) {
  // Pre-scan the class ids so the per-class delay vectors are sized once:
  // the repeated resize-on-growth pattern was measurable on multi-million
  // record production logs.
  std::size_t num_classes = 0;
  for (const auto& r : records) {
    num_classes = std::max<std::size_t>(num_classes, r.class_id + 1);
  }
  std::vector<std::size_t> counts(num_classes, 0);
  for (const auto& r : records) ++counts[r.class_id];

  // Gather intra-node delays per class.
  std::vector<std::vector<double>> delays(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) delays[c].reserve(counts[c]);
  for (const auto& r : records) {
    delays[r.class_id].push_back(
        static_cast<double>((r.departure - r.arrival).micros()));
  }
  std::vector<double> by_class(delays.size(), 0.0);
  for (std::size_t c = 0; c < delays.size(); ++c) {
    if (!delays[c].empty()) {
      by_class[c] = quantile(delays[c], mask_quantile);
    }
  }
  return ServiceTimeTable{std::move(by_class)};
}

std::vector<double> compute_throughput(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options) {
  std::vector<double> tput(spec.count, 0.0);
  if (spec.count == 0) return tput;

  double unit_us = options.work_unit_us;
  if (options.mode == ThroughputMode::kNormalizedWorkUnits && unit_us <= 0.0) {
    unit_us = table.min_service_us();
    assert(unit_us > 0.0 && "service-time table is empty");
  }

  for (const auto& r : records) {
    if (!spec.contains(r.departure)) continue;
    const std::size_t idx = spec.index_of(r.departure);
    if (options.mode == ThroughputMode::kRequestsCompleted) {
      tput[idx] += 1.0;
    } else {
      // A request transforms into round(service/unit) work units, at least 1.
      const double service = table.service_us(r.class_id);
      const double units = std::max(1.0, std::round(service / unit_us));
      tput[idx] += units;
    }
  }

  if (options.per_second) {
    const double width_s = spec.width.seconds_f();
    for (double& v : tput) v /= width_s;
  }
  return tput;
}

}  // namespace tbd::core
