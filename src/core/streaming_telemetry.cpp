#include "core/streaming_telemetry.h"

#include <utility>

namespace tbd::core {

namespace {

// Episode durations in ms: transient bottlenecks live in the 50 ms - few s
// band (the paper's whole point); the top bucket catches sustained ones.
const std::vector<double> kDurationBoundsMs = {50,   100,  250,   500,
                                               1000, 2500, 5000,  10000};
// Peak concurrent-request load during an episode.
const std::vector<double> kPeakLoadBounds = {1, 2, 4, 8, 16, 32, 64, 128};

}  // namespace

StreamingTelemetry::StreamingTelemetry(StreamingDetector& detector,
                                       Options options,
                                       obs::Registry& registry,
                                       obs::EventLog* events,
                                       obs::EventLog* mirror)
    : detector_{detector},
      options_{std::move(options)},
      events_{events},
      mirror_{mirror},
      records_total_{registry.counter("tbd_stream_records_total",
                                      {{"stream", options_.stream}})},
      dropped_total_{registry.counter("tbd_stream_dropped_records_total",
                                      {{"stream", options_.stream}})},
      episode_opens_total_{registry.counter("tbd_stream_episode_opens_total",
                                            {{"stream", options_.stream}})},
      episode_closes_total_{registry.counter(
          "tbd_stream_episode_closes_total", {{"stream", options_.stream}})},
      load_{registry.gauge("tbd_stream_load", {{"stream", options_.stream}})},
      tput_{registry.gauge("tbd_stream_throughput",
                           {{"stream", options_.stream}})},
      nstar_{registry.gauge("tbd_stream_nstar", {{"stream", options_.stream}})},
      tpmax_{registry.gauge("tbd_stream_tpmax", {{"stream", options_.stream}})},
      ingest_watermark_us_{registry.gauge("tbd_stream_ingest_watermark_us",
                                          {{"stream", options_.stream}})},
      sealed_through_us_{registry.gauge("tbd_stream_sealed_through_us",
                                        {{"stream", options_.stream}})},
      seal_lag_us_{registry.gauge("tbd_stream_seal_lag_us",
                                  {{"stream", options_.stream}})},
      open_intervals_{registry.gauge("tbd_stream_open_intervals",
                                     {{"stream", options_.stream}})},
      episode_duration_ms_{registry.histogram(
          "tbd_stream_episode_duration_ms", {{"stream", options_.stream}},
          kDurationBoundsMs)},
      episode_peak_load_{registry.histogram("tbd_stream_episode_peak_load",
                                            {{"stream", options_.stream}},
                                            kPeakLoadBounds)} {
  for (std::size_t s = 0; s < intervals_total_.size(); ++s) {
    intervals_total_[s] = &registry.counter(
        "tbd_stream_intervals_total",
        {{"stream", options_.stream},
         {"state", to_string(static_cast<IntervalState>(s))}});
  }
  sync();

  // Claim the callbacks, chaining whatever was installed before us. The
  // detector fires seals strictly in interval order on the pushing thread,
  // so event-log sequence numbers are deterministic for a given replay.
  const TimePoint grid_start = detector_.start();
  const Duration width = detector_.config().width;

  auto prev_interval = detector_.interval_callback();
  detector_.on_interval([this, prev_interval = std::move(prev_interval),
                         grid_start, width](std::size_t index, double load,
                                            double tput, IntervalState state) {
    load_.set(load);
    tput_.set(tput);
    intervals_total_[static_cast<std::size_t>(state)]->inc();
    const TimePoint t = grid_start + width * static_cast<std::int64_t>(index);
    if (events_ != nullptr) {
      events_->interval_sealed(options_.stream, index, t.micros(), load, tput,
                               to_string(state));
    }
    if (mirror_ != nullptr) {
      mirror_->interval_sealed(options_.stream, index, t.micros(), load, tput,
                               to_string(state));
    }
    if (prev_interval) prev_interval(index, load, tput, state);
  });

  auto prev_open = detector_.episode_open_callback();
  detector_.on_episode_open([this, prev_open = std::move(prev_open)](
                                std::size_t index, TimePoint start) {
    episode_opens_total_.inc();
    if (events_ != nullptr) {
      events_->episode_open(options_.stream, index, start.micros());
    }
    if (mirror_ != nullptr) {
      mirror_->episode_open(options_.stream, index, start.micros());
    }
    if (prev_open) prev_open(index, start);
  });

  auto prev_close = detector_.episode_callback();
  detector_.on_episode(
      [this, prev_close = std::move(prev_close)](const Episode& episode) {
        episode_closes_total_.inc();
        episode_duration_ms_.observe(episode.duration.seconds_f() * 1e3);
        episode_peak_load_.observe(episode.peak_load);
        if (events_ != nullptr) {
          events_->episode_close(options_.stream, episode.start.micros(),
                                 episode.duration.micros(), episode.peak_load,
                                 episode.contains_freeze);
        }
        if (mirror_ != nullptr) {
          mirror_->episode_close(options_.stream, episode.start.micros(),
                                 episode.duration.micros(), episode.peak_load,
                                 episode.contains_freeze);
        }
        if (prev_close) prev_close(episode);
      });
}

void StreamingTelemetry::add_records(std::uint64_t n) {
  records_total_.add(n);
}

void StreamingTelemetry::sync() {
  const auto dropped =
      static_cast<std::uint64_t>(detector_.dropped_records());
  if (dropped > dropped_synced_) {
    dropped_total_.add(dropped - dropped_synced_);
    dropped_synced_ = dropped;
  }
  nstar_.set(detector_.nstar().n_star);
  tpmax_.set(detector_.nstar().tp_max);

  // Freshness: how far ingest has reached, how far sealing trails it. Lag
  // is clamped at 0 because finish() seals the tail interval whole, which
  // legitimately pushes the sealed horizon past the last departure.
  const std::int64_t watermark_us = detector_.high_water().micros();
  const std::int64_t sealed_us = detector_.sealed_through().micros();
  ingest_watermark_us_.set(static_cast<double>(watermark_us));
  sealed_through_us_.set(static_cast<double>(sealed_us));
  seal_lag_us_.set(static_cast<double>(
      watermark_us > sealed_us ? watermark_us - sealed_us : 0));
  open_intervals_.set(static_cast<double>(detector_.open_intervals()));
}

std::string StreamingTelemetry::status_json() const {
  const std::int64_t watermark_us = detector_.high_water().micros();
  const std::int64_t sealed_us = detector_.sealed_through().micros();
  const std::int64_t lag_us =
      watermark_us > sealed_us ? watermark_us - sealed_us : 0;
  std::string out;
  out.reserve(256);
  out += "{\"stream\":\"";
  out += obs::detail::json_escape(options_.stream);
  out += "\",\"records\":";
  out += std::to_string(records_total_.value());
  out += ",\"dropped\":";
  out += std::to_string(static_cast<std::uint64_t>(
      detector_.dropped_records()));
  out += ",\"intervals\":";
  out += std::to_string(detector_.intervals_emitted());
  out += ",\"episodes\":";
  out += std::to_string(detector_.episodes().size());
  out += ",\"ingest_watermark_us\":";
  out += std::to_string(watermark_us);
  out += ",\"sealed_through_us\":";
  out += std::to_string(sealed_us);
  out += ",\"seal_lag_us\":";
  out += std::to_string(lag_us);
  out += ",\"open_intervals\":";
  out += std::to_string(detector_.open_intervals());
  out += ",\"nstar\":";
  obs::detail::append_number(out, detector_.nstar().n_star);
  out += ",\"tpmax\":";
  obs::detail::append_number(out, detector_.nstar().tp_max);
  out += "}";
  return out;
}

}  // namespace tbd::core
