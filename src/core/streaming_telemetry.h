// Wires one StreamingDetector into the live telemetry plane: labeled
// metrics in an obs::Registry and NDJSON records in an obs::EventLog.
//
// The obs layer deliberately knows nothing about core types (it depends
// only on util), so this adapter lives in core: it claims the detector's
// callbacks — chaining to whatever the caller had installed — and
// translates every seal/open/close into
//
//   gauges    tbd_stream_load / tbd_stream_throughput   (current interval)
//             tbd_stream_nstar / tbd_stream_tpmax       (frozen calibration)
//   counters  tbd_stream_records_total
//             tbd_stream_dropped_records_total
//             tbd_stream_intervals_total{state=...}     (one per IntervalState)
//             tbd_stream_episode_opens_total / _closes_total
//   histos    tbd_stream_episode_duration_ms
//             tbd_stream_episode_peak_load
//   gauges    tbd_stream_ingest_watermark_us            (freshness: latest
//             tbd_stream_sealed_through_us               departure, sealed
//             tbd_stream_seal_lag_us                     horizon, and the
//             tbd_stream_open_intervals                  gap between them)
//
// all carrying {stream="<name>"} so one registry serves every monitored
// stream. Metric references are resolved once at construction; the
// per-interval hot path never takes the registry mutex.
//
// The detector does not count pushed records itself and its dropped-record
// count is a plain member, so the caller reports both: add_records() after
// each push_batch, sync() to fold the dropped delta into the counter
// (tbd_watch calls sync() once per chunk and at exit).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/streaming_detector.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace tbd::core {

class StreamingTelemetry {
 public:
  struct Options {
    /// Label value for every metric and the "stream" field of every event.
    std::string stream;
  };

  /// Claims `detector`'s callbacks (previous ones keep firing, after the
  /// telemetry). `events` may be null: metrics only. `mirror` is a second,
  /// optional event sink receiving the same events after `events` — a
  /// multi-tenant daemon points `events` at the shared journal (global
  /// sequence, backs /episodes) and `mirror` at the stream's private log
  /// (per-stream sequence, deterministic regardless of how other streams
  /// interleave). Both `detector` and the sinks must outlive this object.
  StreamingTelemetry(StreamingDetector& detector, Options options,
                     obs::Registry& registry, obs::EventLog* events,
                     obs::EventLog* mirror = nullptr);

  StreamingTelemetry(const StreamingTelemetry&) = delete;
  StreamingTelemetry& operator=(const StreamingTelemetry&) = delete;

  /// Counts records handed to push/push_batch (caller-reported).
  void add_records(std::uint64_t n);
  /// Folds the detector's dropped-record count into the registry counter
  /// (delta since the last sync) and refreshes the calibration and
  /// freshness gauges (watermark, sealed-through, seal lag, open cells).
  void sync();

  /// One JSON object for the /statusz stream table: identity, counters,
  /// and the freshness fields as of the last sync(). seal_lag_us is
  /// clamped at 0 (finish() seals past the watermark).
  [[nodiscard]] std::string status_json() const;

 private:
  StreamingDetector& detector_;
  Options options_;
  obs::EventLog* events_;
  obs::EventLog* mirror_;

  obs::Counter& records_total_;
  obs::Counter& dropped_total_;
  obs::Counter& episode_opens_total_;
  obs::Counter& episode_closes_total_;
  std::array<obs::Counter*, 4> intervals_total_{};  // per IntervalState
  obs::Gauge& load_;
  obs::Gauge& tput_;
  obs::Gauge& nstar_;
  obs::Gauge& tpmax_;
  obs::Gauge& ingest_watermark_us_;
  obs::Gauge& sealed_through_us_;
  obs::Gauge& seal_lag_us_;
  obs::Gauge& open_intervals_;
  obs::Histogram& episode_duration_ms_;
  obs::Histogram& episode_peak_load_;

  std::uint64_t dropped_synced_ = 0;
};

}  // namespace tbd::core
