// Automatic interval-length selection — the paper's stated future work
// (Section III-D: "An automatic way to choose a proper time interval length
// is part of our future research").
//
// Section III-D identifies the trade-off:
//  * too SHORT an interval blurs the main sequence because per-interval
//    normalized throughput becomes noisy (few completions per interval,
//    boundary-crossing requests, service-time jitter);
//  * too LONG averages out the load peaks and hides short congestion.
//
// We operationalize both sides:
//  * blur(w)      = mean within-load-bin coefficient of variation of
//                   throughput (residual scatter around the main sequence);
//  * retention(w) = dynamic range of the measured load at width w relative
//                   to the range at the finest candidate (peak visibility).
//
// choose_interval_length() walks candidates from fine to coarse and picks
// the FINEST width whose blur is acceptable; the retention column lets the
// caller see what each coarser width would have cost.
#pragma once

#include <span>
#include <vector>

#include "core/throughput_calculator.h"
#include "trace/records.h"
#include "util/time.h"

namespace tbd::core {

struct IntervalCandidate {
  Duration width;
  double blur = 0.0;          // residual CV around the binned curve
  double load_range = 0.0;    // max observed load
  double retention = 0.0;     // load_range / finest load_range
  std::size_t intervals = 0;
  double mean_completions = 0.0;  // departures per interval (noise driver)
};

struct IntervalSelection {
  Duration chosen;                 // recommended width
  std::vector<IntervalCandidate> candidates;  // fine -> coarse, all scored
};

struct IntervalSelectionConfig {
  /// Acceptable residual CV; widths with more blur are rejected.
  double max_blur = 0.35;
  /// Load bins used when computing residual scatter.
  int bins = 25;
  /// Require at least this many completions per interval on average
  /// (Section III-B's "too few requests completed in a small time
  /// interval").
  double min_mean_completions = 8.0;
};

/// Scores each candidate width over the records and picks the finest
/// acceptable one. `candidates` must be sorted fine -> coarse; if none is
/// acceptable the coarsest is chosen.
[[nodiscard]] IntervalSelection choose_interval_length(
    std::span<const trace::RequestRecord> records, TimePoint t0, TimePoint t1,
    const ServiceTimeTable& service_times,
    std::span<const Duration> candidates,
    const IntervalSelectionConfig& config = {});

/// Columnar-layout overload; identical selection (the scored series are
/// bit-identical, see sweep_detail.h).
[[nodiscard]] IntervalSelection choose_interval_length(
    const trace::RequestColumnsView& columns, TimePoint t0, TimePoint t1,
    const ServiceTimeTable& service_times,
    std::span<const Duration> candidates,
    const IntervalSelectionConfig& config = {});

/// The residual-CV blur metric, exposed for diagnostics and tests.
[[nodiscard]] double main_sequence_blur(std::span<const double> load,
                                        std::span<const double> tput,
                                        int bins);

}  // namespace tbd::core
