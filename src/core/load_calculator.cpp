#include "core/load_calculator.h"

#include "core/sweep_detail.h"

namespace tbd::core {

std::vector<double> compute_load(std::span<const trace::RequestRecord> records,
                                 const IntervalSpec& spec) {
  std::vector<double> load;
  detail::sweep_load_throughput<true, false>(records, spec, nullptr, nullptr,
                                             &load, nullptr);
  return load;
}

std::vector<double> compute_load(const trace::RequestColumnsView& columns,
                                 const IntervalSpec& spec) {
  std::vector<double> load;
  detail::sweep_load_throughput<true, false>(columns, spec, nullptr, nullptr,
                                             &load, nullptr);
  return load;
}

int concurrency_at(std::span<const trace::RequestRecord> records, TimePoint t) {
  int n = 0;
  for (const auto& r : records) {
    if (r.arrival < t && r.departure >= t) ++n;
  }
  return n;
}

}  // namespace tbd::core
