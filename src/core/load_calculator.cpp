#include "core/load_calculator.h"

#include <algorithm>

namespace tbd::core {

std::vector<double> compute_load(std::span<const trace::RequestRecord> records,
                                 const IntervalSpec& spec) {
  std::vector<double> load(spec.count, 0.0);
  if (spec.count == 0) return load;
  const TimePoint grid_end = spec.end();

  // Concurrency change points, clipped to the grid.
  struct Edge {
    TimePoint at;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(records.size() * 2);
  std::size_t spanning = 0;  // active across the whole grid (no edges inside)
  for (const auto& r : records) {
    if (r.departure <= spec.start || r.arrival >= grid_end) continue;
    const TimePoint a = std::max(r.arrival, spec.start);
    const TimePoint d = std::min(r.departure, grid_end);
    if (a == spec.start && d == grid_end && r.arrival < spec.start &&
        r.departure > grid_end) {
      ++spanning;
      continue;
    }
    edges.push_back(Edge{a, +1});
    edges.push_back(Edge{d, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.at != y.at) return x.at < y.at;
    return x.delta < y.delta;  // departures before arrivals at the same tick
  });

  // Sweep, accumulating concurrency * dt into the interval cells.
  double conc = static_cast<double>(spanning);
  TimePoint cursor = spec.start;
  std::size_t cell = 0;
  auto accumulate_until = [&](TimePoint until) {
    while (cursor < until) {
      const TimePoint cell_end = spec.interval_start(cell) + spec.width;
      const TimePoint seg_end = std::min(until, cell_end);
      load[cell] += conc * static_cast<double>((seg_end - cursor).micros());
      cursor = seg_end;
      if (cursor == cell_end && cell + 1 < spec.count) ++cell;
    }
  };
  for (const auto& e : edges) {
    accumulate_until(e.at);
    conc += e.delta;
  }
  accumulate_until(grid_end);

  const auto width_us = static_cast<double>(spec.width.micros());
  for (double& v : load) v /= width_us;
  return load;
}

int concurrency_at(std::span<const trace::RequestRecord> records, TimePoint t) {
  int n = 0;
  for (const auto& r : records) {
    if (r.arrival < t && r.departure >= t) ++n;
  }
  return n;
}

}  // namespace tbd::core
