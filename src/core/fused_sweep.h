// Fused load + throughput sweep (Sections III-A and III-B in one pass).
//
// detect_bottlenecks needs both per-interval series over the same grid; the
// separate calculators each traverse the full record array. This entry point
// produces both vectors in a single traversal — bit-identical to
// compute_load / compute_throughput (they are instantiations of the same
// template, see sweep_detail.h), at roughly the cost of the load sweep
// alone, since the throughput binning rides along in the clipping loop.
#pragma once

#include <span>
#include <vector>

#include "core/intervals.h"
#include "core/throughput_calculator.h"
#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::core {

struct LoadThroughput {
  std::vector<double> load;
  std::vector<double> throughput;
};

/// Per-interval average concurrency and throughput, computed in one pass.
/// Identical output to calling compute_load and compute_throughput.
[[nodiscard]] LoadThroughput compute_load_throughput(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options = {});

/// Columnar-layout overload; bit-identical to the AoS path (same kernel,
/// different field accessors) while streaming only the three hot columns.
[[nodiscard]] LoadThroughput compute_load_throughput(
    const trace::RequestColumnsView& columns, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options = {});

}  // namespace tbd::core
