#include "core/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/metrics.h"
#include "obs/span.h"

namespace tbd::core {

namespace {

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string band_name(double q) {
  const double pct = q * 100.0;
  char buf[32];
  if (std::abs(pct - std::round(pct)) < 1e-9) {
    std::snprintf(buf, sizeof buf, "p%d", static_cast<int>(std::round(pct)));
  } else {
    std::snprintf(buf, sizeof buf, "p%.1f", pct);
  }
  return buf;
}

/// Default latency histogram grid: log-spaced 1-2-5 decades, 100us .. 60s.
std::vector<double> default_latency_bounds() {
  std::vector<double> bounds;
  for (double decade = 100.0; decade < 6e7; decade *= 10.0) {
    for (const double m : {1.0, 2.0, 5.0}) {
      const double b = decade * m;
      if (b <= 6e7) bounds.push_back(b);
    }
  }
  bounds.push_back(6e7);
  return bounds;
}

/// Queue/service split of [t0, t1] intersected with the sorted disjoint
/// `windows` (the in-episode share).
trace::ConcurrencyProfile::Split split_within(
    const trace::ConcurrencyProfile& profile,
    std::span<const TimeWindow> windows, TimePoint t0, TimePoint t1) {
  trace::ConcurrencyProfile::Split in;
  for (const TimeWindow& w : windows) {
    if (w.end <= t0) continue;
    if (w.start >= t1) break;
    const auto s = profile.split(std::max(t0, w.start), std::min(t1, w.end));
    in.queue_us += s.queue_us;
    in.service_us += s.service_us;
  }
  return in;
}

}  // namespace

std::vector<TimeWindow> congested_windows(const DetectionResult& detection) {
  std::vector<TimeWindow> windows;
  const auto& states = detection.states;
  std::size_t i = 0;
  while (i < states.size()) {
    if (states[i] != IntervalState::kCongested &&
        states[i] != IntervalState::kFrozen) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < states.size() && (states[j] == IntervalState::kCongested ||
                                 states[j] == IntervalState::kFrozen)) {
      ++j;
    }
    windows.push_back(TimeWindow{detection.spec.interval_start(i),
                                 detection.spec.interval_start(i) +
                                     detection.spec.width *
                                         static_cast<std::int64_t>(j - i)});
    i = j;
  }
  return windows;
}

AttributionReport attribute_latency(std::span<const trace::TxnTree> txns,
                                    std::span<const trace::ServerIndex> servers,
                                    std::span<const DetectionResult> detections,
                                    const trace::ProfileMap& profiles,
                                    const AttributionConfig& config) {
  TBD_SPAN("flight.attribute");
  AttributionReport report;
  report.band_quantiles = config.band_quantiles;
  report.txns = txns.size();

  std::map<trace::ServerIndex, std::vector<TimeWindow>> windows;
  for (std::size_t s = 0; s < servers.size() && s < detections.size(); ++s) {
    windows.emplace(servers[s], congested_windows(detections[s]));
  }

  // Band cutoffs from the latency histogram (obs::snapshot_quantile).
  obs::Histogram hist{config.latency_bounds_us.empty()
                          ? default_latency_bounds()
                          : config.latency_bounds_us};
  for (const trace::TxnTree& t : txns) {
    hist.observe(static_cast<double>(t.latency().micros()));
  }
  const auto snap = hist.snapshot();
  for (const double q : config.band_quantiles) {
    report.cutoffs_us.push_back(obs::snapshot_quantile(snap, q));
  }

  const std::size_t band_count = config.band_quantiles.size() + 1;
  std::vector<std::map<trace::ServerIndex, ServerAttribution>> acc(band_count);
  report.bands.resize(band_count);
  for (std::size_t b = 0; b < band_count; ++b) {
    if (b < config.band_quantiles.size()) {
      report.bands[b].band = band_name(config.band_quantiles[b]);
      report.bands[b].cutoff_us = report.cutoffs_us[b];
    } else {
      report.bands[b].band = "pmax";
      report.bands[b].cutoff_us = -1.0;
    }
  }

  static const std::vector<TimeWindow> kNoWindows;
  for (const trace::TxnTree& t : txns) {
    const auto latency_us = static_cast<double>(t.latency().micros());
    std::size_t band = config.band_quantiles.size();
    for (std::size_t b = 0; b < report.cutoffs_us.size(); ++b) {
      if (latency_us <= report.cutoffs_us[b]) {
        band = b;
        break;
      }
    }
    ++report.bands[band].txns;
    report.bands[band].latency_us += latency_us;
    for (const trace::PathSegment& seg : t.critical_path) {
      const trace::ServerIndex server =
          t.visits[static_cast<std::size_t>(seg.visit)].server;
      const auto pit = profiles.find(server);
      if (pit == profiles.end()) continue;
      const auto total = pit->second.split(seg.start, seg.end);
      const auto wit = windows.find(server);
      const auto in = split_within(
          pit->second, wit != windows.end() ? wit->second : kNoWindows,
          seg.start, seg.end);
      ServerAttribution& a = acc[band][server];
      a.server = server;
      a.queue_in_us += in.queue_us;
      a.queue_out_us += std::max(0.0, total.queue_us - in.queue_us);
      a.service_in_us += in.service_us;
      a.service_out_us += std::max(0.0, total.service_us - in.service_us);
    }
  }
  for (std::size_t b = 0; b < band_count; ++b) {
    for (const auto& [server, a] : acc[b]) report.bands[b].servers.push_back(a);
  }
  return report;
}

std::string attribution_ndjson(const AttributionReport& report) {
  std::string out;
  out += "{\"type\":\"meta\",\"schema_version\":1,\"txns\":" +
         std::to_string(report.txns) + ",\"band_quantiles\":[";
  for (std::size_t i = 0; i < report.band_quantiles.size(); ++i) {
    if (i) out += ",";
    out += fmt(report.band_quantiles[i], 6);
  }
  out += "],\"cutoffs_us\":[";
  for (std::size_t i = 0; i < report.cutoffs_us.size(); ++i) {
    if (i) out += ",";
    out += fmt(report.cutoffs_us[i], 3);
  }
  out += "]}\n";
  for (const BandAttribution& band : report.bands) {
    out += "{\"type\":\"band\",\"band\":\"" + band.band +
           "\",\"cutoff_us\":" + fmt(band.cutoff_us, 3) +
           ",\"txns\":" + std::to_string(band.txns) +
           ",\"latency_us\":" + fmt(band.latency_us, 3) + "}\n";
  }
  for (const BandAttribution& band : report.bands) {
    for (const ServerAttribution& a : band.servers) {
      const double frac =
          band.latency_us > 0.0 ? a.total_us() / band.latency_us : 0.0;
      out += "{\"type\":\"band_server\",\"band\":\"" + band.band +
             "\",\"server\":" + std::to_string(a.server) +
             ",\"queue_in_episode_us\":" + fmt(a.queue_in_us, 3) +
             ",\"queue_out_episode_us\":" + fmt(a.queue_out_us, 3) +
             ",\"service_in_episode_us\":" + fmt(a.service_in_us, 3) +
             ",\"service_out_episode_us\":" + fmt(a.service_out_us, 3) +
             ",\"latency_frac\":" + fmt(frac, 6) + "}\n";
    }
  }
  return out;
}

bool write_attribution_ndjson(const std::string& path,
                              const AttributionReport& report) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << attribution_ndjson(report);
  return static_cast<bool>(out);
}

std::string attribution_csv(const AttributionReport& report) {
  std::string out =
      "band,server,txns,latency_us,queue_in_episode_us,queue_out_episode_us,"
      "service_in_episode_us,service_out_episode_us\n";
  for (const BandAttribution& band : report.bands) {
    for (const ServerAttribution& a : band.servers) {
      out += band.band + "," + std::to_string(a.server) + "," +
             std::to_string(band.txns) + "," + fmt(band.latency_us, 3) + "," +
             fmt(a.queue_in_us, 3) + "," + fmt(a.queue_out_us, 3) + "," +
             fmt(a.service_in_us, 3) + "," + fmt(a.service_out_us, 3) + "\n";
    }
  }
  return out;
}

bool write_attribution_csv(const std::string& path,
                           const AttributionReport& report) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << attribution_csv(report);
  return static_cast<bool>(out);
}

}  // namespace tbd::core
