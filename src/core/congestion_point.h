// Congestion point N* determination (Section III-C).
//
// Given the (load, throughput) samples of a server — one pair per fine
// interval — the main sequence curve rises and flattens at the maximum
// throughput; N* is the minimum load beyond which additional load stops
// buying throughput.
//
// Two estimators are provided:
//
//  * kRobustKnee (default): bin the curve, take TPmax as the mean of the
//    top-quintile bins, and place N* where the (3-bin smoothed) throughput
//    first reaches knee_tput_fraction * TPmax. The estimate is validated
//    with the paper's slope-stability idea: the mean slope beyond N* must
//    be below tol_factor * delta_0, where delta_0 is the secant slope of
//    the rising region; otherwise the server never saturated in this data
//    (converged = false) and N* parks at the top of the observed range.
//    This variant is well-conditioned on the gradually-flattening curves
//    real servers produce.
//
//  * kInterventionWalk: the paper's Equations 1-2 verbatim — inter-bin
//    slopes delta_i, walking n0 until the one-sided Student-t lower
//    confidence bound of {delta_1..delta_n0} falls below tol — plus a
//    flat-tail validation and a back-scan to the start of the flat region
//    (without which fine-bin slope noise trips the walk arbitrarily
//    early). Kept for fidelity and ablation; fragile when the curve has no
//    sharp knee.
#pragma once

#include <span>
#include <vector>

namespace tbd::core {

enum class NStarMethod {
  kRobustKnee,
  kInterventionWalk,
};

struct NStarConfig {
  NStarMethod method = NStarMethod::kRobustKnee;
  int bins = 100;
  /// tol = tol_factor * delta_0 in the slope-stability validation
  /// (Equation 2's threshold).
  double tol_factor = 0.2;
  /// Robust knee: N* sits where smoothed throughput reaches this fraction
  /// of TPmax.
  double knee_tput_fraction = 0.92;
  /// One-sided confidence level of the t bound (paper: 0.95 coefficient).
  double confidence = 0.95;
  /// Bins with fewer samples are merged forward (fine intervals at extreme
  /// loads are rare and noisy).
  int min_samples_per_bin = 5;
  /// Number of leading slopes averaged into delta_0 when the secant
  /// estimate degenerates.
  int delta0_window = 3;
  /// Intervention walk: slopes after the trip point must average below
  /// flat_factor * delta_0 over this window for the trip to count.
  int flat_window = 5;
  double flat_factor = 0.5;
};

struct LoadBin {
  double load = 0.0;        // bin midpoint load
  double mean_tput = 0.0;   // average throughput of samples in the bin
  int samples = 0;
};

struct NStarResult {
  /// The congestion point; 0 if estimation failed (see converged).
  double n_star = 0.0;
  /// Robust maximum throughput (top-quintile bin mean; the Utilization Law
  /// cap TPmax).
  double tp_max = 0.0;
  /// True when the curve demonstrably flattens within the observed range;
  /// false means the server never saturated in this data and n_star is set
  /// to the largest observed bin load (nothing classifies as congested).
  bool converged = false;
  std::vector<LoadBin> bins;    // non-empty bins in load order
  std::vector<double> slopes;   // delta_i per Equation 1
};

/// Estimates N* from per-interval load/throughput pairs (equal length).
[[nodiscard]] NStarResult estimate_congestion_point(
    std::span<const double> load, std::span<const double> throughput,
    const NStarConfig& config = {});

}  // namespace tbd::core
