#include "core/intervals.h"

#include <algorithm>

namespace tbd::core {

std::vector<double> IntervalSpec::midpoints_seconds() const {
  std::vector<double> xs(count);
  for (std::size_t i = 0; i < count; ++i) {
    xs[i] = (interval_start(i) + width / 2).seconds_f();
  }
  return xs;
}

std::vector<double> interval_coverage(std::span<const TimeWindow> windows,
                                      const IntervalSpec& spec) {
  std::vector<double> covered_us(spec.count, 0.0);
  if (spec.count == 0) return covered_us;

  // Merge overlapping windows first so unions are not double counted.
  std::vector<TimeWindow> sorted(windows.begin(), windows.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const TimeWindow& a, const TimeWindow& b) { return a.start < b.start; });
  std::vector<TimeWindow> merged;
  for (const auto& w : sorted) {
    if (w.end <= w.start) continue;
    if (!merged.empty() && w.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }

  const TimePoint grid_end = spec.end();
  for (const auto& w : merged) {
    TimePoint lo = std::max(w.start, spec.start);
    const TimePoint hi = std::min(w.end, grid_end);
    while (lo < hi) {
      const std::size_t idx = spec.index_of(lo);
      const TimePoint cell_end = spec.interval_start(idx) + spec.width;
      const TimePoint seg_end = std::min(hi, cell_end);
      covered_us[idx] += static_cast<double>((seg_end - lo).micros());
      lo = seg_end;
    }
  }

  const auto width_us = static_cast<double>(spec.width.micros());
  for (double& c : covered_us) c /= width_us;
  return covered_us;
}

}  // namespace tbd::core
