// Transient-bottleneck detection (Section III, applied in Section IV).
//
// Combines the pieces: per-interval load (III-A), normalized throughput
// (III-B), and the congestion point N* (III-C) classify each fine interval
// of each server:
//
//   kIdle       load ~ 0 (nothing to do; point 3 in Figure 5(c))
//   kNormal     load <= N* (below congestion; point 1)
//   kCongested  load  > N* (requests queue; point 2)
//   kFrozen     load  > N* with near-zero throughput — the POIs of
//               Figure 9(b): the server holds many requests but emits no
//               responses (stop-the-world GC)
//
// Maximal runs of congested/frozen intervals form transient-bottleneck
// episodes; their frequency and duration distribution quantify "frequent
// transient bottlenecks" and drive the case-study conclusions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/congestion_point.h"
#include "core/intervals.h"
#include "core/load_calculator.h"
#include "core/throughput_calculator.h"
#include "trace/records.h"

namespace tbd::core {

enum class IntervalState : std::uint8_t { kIdle, kNormal, kCongested, kFrozen };

struct DetectorConfig {
  NStarConfig nstar;
  ThroughputOptions throughput;
  /// Load below this is idle.
  double idle_load = 0.05;
  /// Frozen (POI): load > N* and throughput <= poi_tput_frac * TPmax.
  double poi_tput_frac = 0.05;
};

struct Episode {
  TimePoint start;
  Duration duration;
  double peak_load = 0.0;
  bool contains_freeze = false;
};

struct DetectionResult {
  IntervalSpec spec;
  std::vector<double> load;
  std::vector<double> throughput;
  NStarResult nstar;
  std::vector<IntervalState> states;
  std::vector<Episode> episodes;

  [[nodiscard]] std::size_t congested_intervals() const;
  [[nodiscard]] std::size_t frozen_intervals() const;
  /// Fraction of intervals congested or frozen.
  [[nodiscard]] double congested_fraction() const;
  [[nodiscard]] Duration total_congested_time() const;
  [[nodiscard]] Duration longest_episode() const;
};

/// Full pipeline for one server's request log over one interval grid.
[[nodiscard]] DetectionResult detect_bottlenecks(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& service_times, const DetectorConfig& config = {});

/// Columnar-layout overload; bit-identical result (same fused kernel, then
/// the same layout-independent fit/classify/episode stages).
[[nodiscard]] DetectionResult detect_bottlenecks(
    const trace::RequestColumnsView& columns, const IntervalSpec& spec,
    const ServiceTimeTable& service_times, const DetectorConfig& config = {});

/// Classification only, given precomputed series and N* (useful when N* is
/// carried over from a calibration window).
[[nodiscard]] std::vector<IntervalState> classify_intervals(
    std::span<const double> load, std::span<const double> throughput,
    const NStarResult& nstar, const DetectorConfig& config = {});

/// Extracts maximal congested/frozen runs.
[[nodiscard]] std::vector<Episode> extract_episodes(
    std::span<const IntervalState> states, std::span<const double> load,
    const IntervalSpec& spec);

[[nodiscard]] const char* to_string(IntervalState s);

}  // namespace tbd::core
