// Load calculation (Section III-A, Figure 6).
//
// A server's load over an interval is the time-weighted average number of
// concurrent requests — requests whose request message has arrived but whose
// response has not yet departed. Computed exactly from the per-request
// arrival/departure timestamp pairs of passive tracing by sweeping the +1/-1
// concurrency edges and integrating concurrency over each interval.
#pragma once

#include <span>
#include <vector>

#include "core/intervals.h"
#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::core {

/// Per-interval average concurrency. Requests overlapping the grid edges are
/// clipped; a request spanning a whole interval contributes exactly 1 there.
[[nodiscard]] std::vector<double> compute_load(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec);

/// Columnar-layout overload; bit-identical to the AoS path and only streams
/// the arrival/departure columns.
[[nodiscard]] std::vector<double> compute_load(
    const trace::RequestColumnsView& columns, const IntervalSpec& spec);

/// Instantaneous concurrency immediately before time `t` (diagnostics).
[[nodiscard]] int concurrency_at(std::span<const trace::RequestRecord> records,
                                 TimePoint t);

}  // namespace tbd::core
