#include "core/fused_sweep.h"

#include "core/sweep_detail.h"

namespace tbd::core {

LoadThroughput compute_load_throughput(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options) {
  LoadThroughput out;
  detail::sweep_load_throughput<true, true>(records, spec, &table, &options,
                                            &out.load, &out.throughput);
  return out;
}

LoadThroughput compute_load_throughput(const trace::RequestColumnsView& columns,
                                       const IntervalSpec& spec,
                                       const ServiceTimeTable& table,
                                       const ThroughputOptions& options) {
  LoadThroughput out;
  detail::sweep_load_throughput<true, true>(columns, spec, &table, &options,
                                            &out.load, &out.throughput);
  return out;
}

}  // namespace tbd::core
