#include "core/system_report.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tbd::core {

SystemReport rank_bottlenecks(std::span<const DetectionResult> results,
                              std::span<const std::string> names,
                              double min_congested_fraction) {
  assert(results.size() == names.size());
  SystemReport report;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ServerVerdict v;
    v.server = names[i];
    v.congested_fraction = results[i].congested_fraction();
    v.episodes = results[i].episodes.size();
    v.frozen_intervals = results[i].frozen_intervals();
    v.longest_episode = results[i].longest_episode();
    v.n_star = results[i].nstar.n_star;
    v.saturated = results[i].nstar.converged;
    report.verdicts.push_back(std::move(v));
  }
  std::sort(report.verdicts.begin(), report.verdicts.end(),
            [](const ServerVerdict& a, const ServerVerdict& b) {
              if (a.congested_fraction != b.congested_fraction) {
                return a.congested_fraction > b.congested_fraction;
              }
              return a.server < b.server;
            });
  if (!report.verdicts.empty() &&
      report.verdicts.front().congested_fraction >= min_congested_fraction) {
    report.primary_suspect = 0;
  }
  return report;
}

std::string to_string(const SystemReport& report) {
  std::string out = "transient-bottleneck ranking (most congested first):\n";
  char buf[256];
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const auto& v = report.verdicts[i];
    std::snprintf(buf, sizeof buf,
                  "  %zu. %-8s congested=%5.1f%%  episodes=%-4zu frozen=%-4zu "
                  "longest=%-8s N*=%.1f%s%s\n",
                  i + 1, v.server.c_str(), 100.0 * v.congested_fraction,
                  v.episodes, v.frozen_intervals,
                  v.longest_episode.to_string().c_str(), v.n_star,
                  v.saturated ? "" : " (unsaturated)",
                  static_cast<int>(i) == report.primary_suspect
                      ? "   <= primary suspect"
                      : "");
    out += buf;
  }
  if (report.primary_suspect < 0) {
    out += "  no server shows noteworthy transient congestion\n";
  }
  return out;
}

}  // namespace tbd::core
