// Interval grids for fine-grained analysis.
//
// Everything in Section III is computed over a contiguous grid of
// fixed-width time intervals (20 ms / 50 ms / 1 s in the paper). IntervalSpec
// names such a grid; helpers map timestamps to interval indices and compute
// per-interval coverage of event windows (used for the GC running ratio of
// Figure 10(a) and for ground-truth overlap scoring).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/time.h"

namespace tbd::core {

struct IntervalSpec {
  TimePoint start;
  Duration width = Duration::millis(50);
  std::size_t count = 0;

  [[nodiscard]] static IntervalSpec over(TimePoint t0, TimePoint t1,
                                         Duration width) {
    IntervalSpec spec;
    spec.start = t0;
    spec.width = width;
    spec.count = static_cast<std::size_t>((t1 - t0).micros() / width.micros());
    return spec;
  }

  [[nodiscard]] TimePoint end() const {
    return start + width * static_cast<std::int64_t>(count);
  }
  [[nodiscard]] TimePoint interval_start(std::size_t i) const {
    return start + width * static_cast<std::int64_t>(i);
  }
  /// Index of the interval containing `t`; valid only if contains(t).
  [[nodiscard]] std::size_t index_of(TimePoint t) const {
    return static_cast<std::size_t>((t - start).micros() / width.micros());
  }
  [[nodiscard]] bool contains(TimePoint t) const {
    return t >= start && t < end();
  }
  /// Midpoints in seconds (plot x-axis).
  [[nodiscard]] std::vector<double> midpoints_seconds() const;
};

/// A closed event window [start, end] on the timeline.
struct TimeWindow {
  TimePoint start;
  TimePoint end;
};

/// Fraction of each interval covered by the union of the (possibly
/// overlapping) windows; values in [0, 1]. This is the paper's "GC running
/// ratio" when the windows are stop-the-world GC events.
[[nodiscard]] std::vector<double> interval_coverage(
    std::span<const TimeWindow> windows, const IntervalSpec& spec);

}  // namespace tbd::core
