#include "core/streaming_detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tbd::core {

StreamingDetector::StreamingDetector(TimePoint start, Config config,
                                     NStarResult nstar,
                                     ServiceTimeTable service_times)
    : config_{config},
      nstar_{nstar},
      service_times_{std::move(service_times)},
      start_{start},
      high_water_{start} {
  assert(config_.width.is_positive());
  work_unit_us_ = config_.detector.throughput.work_unit_us > 0.0
                      ? config_.detector.throughput.work_unit_us
                      : service_times_.min_service_us();
  assert(work_unit_us_ > 0.0);
}

std::size_t StreamingDetector::cell_index(TimePoint t) const {
  return static_cast<std::size_t>((t - start_).micros() / config_.width.micros());
}

StreamingDetector::Cell& StreamingDetector::cell_at(std::size_t index) {
  assert(index >= first_open_);
  const std::size_t offset = index - first_open_;
  if (offset >= open_cells_.size()) open_cells_.resize(offset + 1);
  return open_cells_[offset];
}

void StreamingDetector::push_fields(TimePoint arrival, TimePoint departure,
                                    trace::ClassId class_id) {
  if (departure < start_ || departure < arrival) {
    ++dropped_;
    return;
  }
  // Too old to land in an unsealed interval?
  if (cell_index(departure) < first_open_) {
    ++dropped_;
    return;
  }

  // Residence contribution: spread [arrival, departure) over cells.
  TimePoint lo = std::max(arrival, start_);
  const TimePoint hi = departure;
  while (lo < hi) {
    const std::size_t idx = cell_index(lo);
    const TimePoint cell_end =
        start_ + config_.width * static_cast<std::int64_t>(idx + 1);
    const TimePoint seg_end = std::min(hi, cell_end);
    if (idx >= first_open_) {
      cell_at(idx).residence_us += static_cast<double>((seg_end - lo).micros());
    }
    lo = seg_end;
  }

  // Work units land in the departure cell.
  const double service = service_times_.service_us(class_id);
  cell_at(cell_index(departure)).work_units +=
      std::max(1.0, std::round(service / work_unit_us_));

  // Advance the high-water mark and seal intervals that can no longer
  // change (every record with arrival before them has departed by now,
  // assuming residence <= lag).
  high_water_ = std::max(high_water_, departure);
  const TimePoint sealed_until = high_water_ - config_.lag;
  if (sealed_until > start_) {
    const std::size_t sealable = cell_index(sealed_until);
    if (sealable > first_open_) seal_up_to(sealable);
  }
}

void StreamingDetector::push(const trace::RequestRecord& record) {
  push_fields(record.arrival, record.departure, record.class_id);
}

void StreamingDetector::push_batch(
    std::span<const trace::RequestRecord> records) {
  for (const auto& r : records) push(r);
}

void StreamingDetector::push_batch(const trace::RequestColumnsView& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    push_fields(TimePoint::from_micros(columns.arrival_us[i]),
                TimePoint::from_micros(columns.departure_us[i]),
                columns.class_id[i]);
  }
}

void StreamingDetector::seal_up_to(std::size_t index) {
  const double width_us = static_cast<double>(config_.width.micros());
  const double width_s = config_.width.seconds_f();
  while (first_open_ < index) {
    Cell cell;
    if (!open_cells_.empty()) {
      cell = open_cells_.front();
      open_cells_.pop_front();
    }
    const std::size_t idx = first_open_++;
    const double load = cell.residence_us / width_us;
    const double tput = config_.detector.throughput.per_second
                            ? cell.work_units / width_s
                            : cell.work_units;

    IntervalState state = IntervalState::kNormal;
    if (load <= config_.detector.idle_load) {
      state = IntervalState::kIdle;
    } else if (load > nstar_.n_star) {
      state = tput <= config_.detector.poi_tput_frac * nstar_.tp_max
                  ? IntervalState::kFrozen
                  : IntervalState::kCongested;
    }
    ++emitted_;
    ++sealed_by_state_[static_cast<std::size_t>(state)];
    const bool hot =
        state == IntervalState::kCongested || state == IntervalState::kFrozen;
    if (hot) ++congested_;
    if (interval_cb_) interval_cb_(idx, load, tput, state);

    // Episode tracking.
    if (hot) {
      if (!current_episode_) {
        current_episode_ = Episode{};
        current_episode_->start =
            start_ + config_.width * static_cast<std::int64_t>(idx);
        if (episode_open_cb_) episode_open_cb_(idx, current_episode_->start);
      }
      current_episode_->duration += config_.width;
      current_episode_->peak_load =
          std::max(current_episode_->peak_load, load);
      current_episode_->contains_freeze |= state == IntervalState::kFrozen;
    } else if (current_episode_) {
      episodes_.push_back(*current_episode_);
      if (episode_cb_) episode_cb_(episodes_.back());
      current_episode_.reset();
    }
  }
}

void StreamingDetector::reset(TimePoint start) {
  start_ = start;
  high_water_ = start;
  first_open_ = 0;
  open_cells_.clear();
  current_episode_.reset();
  episodes_.clear();
  emitted_ = 0;
  congested_ = 0;
  dropped_ = 0;
  sealed_by_state_.fill(0);
}

std::size_t StreamingDetector::seal_idle() {
  if (high_water_ <= start_) return 0;
  const std::size_t before = first_open_;
  seal_up_to(cell_index(high_water_) + 1);
  return first_open_ - before;
}

void StreamingDetector::finish() {
  seal_idle();
  if (current_episode_) {
    episodes_.push_back(*current_episode_);
    if (episode_cb_) episode_cb_(episodes_.back());
    current_episode_.reset();
  }
}

}  // namespace tbd::core
