// Throughput calculation with work-unit normalization
// (Section III-B, Figure 7).
//
// Straightforward throughput — completed requests per interval — is only
// comparable across intervals when all requests cost the same. Under a
// mixed-class workload at 50 ms granularity, the class mix differs from
// interval to interval, so the paper normalizes: each completed request of
// class c contributes service_time(c) / work_unit "work units" to the
// interval containing its departure. The work unit is a common quantum
// across classes (the paper uses the GCD-like greatest common divisor of
// class service times; we default to the smallest class service time).
//
// Class service times are approximated from passive tracing itself: the
// intra-node delay of each request equals its service time when there is no
// queueing, so the estimate is taken from a low-workload period (and can be
// refreshed online as data selectivity drifts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/intervals.h"
#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::core {

/// Per-class service-time table for one server (microseconds, indexed by
/// class id; 0 = class unseen).
class ServiceTimeTable {
 public:
  ServiceTimeTable() = default;
  explicit ServiceTimeTable(std::vector<double> by_class)
      : us_by_class_{std::move(by_class)} {}

  [[nodiscard]] double service_us(trace::ClassId c) const {
    return c < us_by_class_.size() ? us_by_class_[c] : 0.0;
  }
  [[nodiscard]] std::size_t classes() const { return us_by_class_.size(); }

  /// Smallest positive class service time — the default work unit.
  [[nodiscard]] double min_service_us() const;

  void set(trace::ClassId c, double us);

 private:
  std::vector<double> us_by_class_;
};

/// Builds a ServiceTimeTable from records of a (presumed) low-load period:
/// the per-class estimate is the `mask_quantile` quantile of intra-node
/// delays (a low quantile masks residual queueing; the paper's "mask out the
/// queueing effects"). mask_quantile = 0.5 gives the median; 0 gives the
/// minimum.
[[nodiscard]] ServiceTimeTable estimate_service_times(
    std::span<const trace::RequestRecord> records, double mask_quantile = 0.2);

/// Columnar-layout overload; identical estimates (same delays in the same
/// order) while reading only the class/arrival/departure columns.
[[nodiscard]] ServiceTimeTable estimate_service_times(
    const trace::RequestColumnsView& columns, double mask_quantile = 0.2);

enum class ThroughputMode {
  kRequestsCompleted,   // straightforward count
  kNormalizedWorkUnits  // Section III-B normalization
};

struct ThroughputOptions {
  ThroughputMode mode = ThroughputMode::kNormalizedWorkUnits;
  /// Work-unit size in microseconds; <= 0 selects table.min_service_us().
  double work_unit_us = 0.0;
  /// Report rates per second instead of raw per-interval counts.
  bool per_second = true;
};

/// Per-interval throughput; a request counts in the interval containing its
/// departure timestamp.
[[nodiscard]] std::vector<double> compute_throughput(
    std::span<const trace::RequestRecord> records, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options = {});

/// Columnar-layout overload; bit-identical to the AoS path and only streams
/// the departure/class columns.
[[nodiscard]] std::vector<double> compute_throughput(
    const trace::RequestColumnsView& columns, const IntervalSpec& spec,
    const ServiceTimeTable& table, const ThroughputOptions& options = {});

}  // namespace tbd::core
