// JVM garbage-collection model (Section IV-A).
//
// Allocation pressure comes from request processing: the transaction driver
// reports bytes allocated after every app-tier compute segment. When the
// young generation fills, a minor collection runs; a (much larger) tenured
// budget triggers major collections.
//
//  * JDK 1.5 default ("serial"): stop-the-world for the entire collection —
//    the server freezes, requests pile up, and passive tracing sees exactly
//    the paper's POIs: high load with zero throughput (Figure 9(b)).
//  * JDK 1.6 default ("parallel"): a short stop-the-world flip plus a
//    concurrent phase that steals background CPU — the freezes disappear
//    (Figure 11(a)).
//
// The model keeps a GC log (start/end of every stop-the-world window), the
// source of the paper's "GC running ratio" (Figure 10(a)) and of ground
// truth for detector-recall comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "ntier/server.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/time.h"

namespace tbd::transient {

enum class CollectorKind : std::uint8_t {
  kSerialStopTheWorld,   // JDK 1.5 default
  kParallelConcurrent,   // JDK 1.6 default
};

struct GcConfig {
  CollectorKind collector = CollectorKind::kSerialStopTheWorld;
  /// Bytes allocated between minor collections (young generation size).
  double young_gen_bytes = 550.0 * 1024 * 1024;
  /// Bytes allocated between major collections.
  double major_every_bytes = 4.0 * 1024 * 1024 * 1024;
  /// Stop-the-world pause means; actual pauses get gamma jitter (CV 0.2).
  /// The serial (JDK 1.5) collector scans the whole young generation with
  /// one thread: pauses comfortably exceed the 50 ms analysis interval,
  /// which is what makes its freezes visible as POIs.
  Duration serial_minor_pause = Duration::millis(110);
  Duration serial_major_pause = Duration::millis(550);
  Duration parallel_minor_pause = Duration::millis(5);
  Duration parallel_major_pause = Duration::millis(30);
  /// Concurrent phase of the parallel collector: background CPU and length.
  double concurrent_cores = 0.4;
  Duration concurrent_minor = Duration::millis(30);
  Duration concurrent_major = Duration::millis(250);
  double pause_cv = 0.2;
};

struct GcEvent {
  TimePoint start;
  TimePoint end;         // end of the stop-the-world window
  bool major = false;
};

class GcModel {
 public:
  GcModel(sim::Engine& engine, ntier::Server& server, GcConfig config, Rng rng);
  GcModel(const GcModel&) = delete;
  GcModel& operator=(const GcModel&) = delete;

  /// Allocation hook; wire into TxnDriver::set_app_alloc_hook.
  void on_alloc(double bytes);

  [[nodiscard]] const std::vector<GcEvent>& log() const { return log_; }
  [[nodiscard]] std::uint64_t minor_collections() const { return minors_; }
  [[nodiscard]] std::uint64_t major_collections() const { return majors_; }

 private:
  void trigger(bool major);
  [[nodiscard]] Duration jittered(Duration mean);

  sim::Engine& engine_;
  ntier::Server& server_;
  GcConfig config_;
  Rng rng_;
  double since_minor_ = 0.0;
  double since_major_ = 0.0;
  bool collecting_ = false;
  std::vector<GcEvent> log_;
  std::uint64_t minors_ = 0;
  std::uint64_t majors_ = 0;
};

/// Convenience GcConfig presets for the paper's two JDKs.
[[nodiscard]] GcConfig jdk15_config();
[[nodiscard]] GcConfig jdk16_config();

}  // namespace tbd::transient
