#include "transient/speedstep.h"

#include <algorithm>
#include <cassert>

namespace tbd::transient {

std::vector<PState> xeon_pstates() {
  // Table II: partial P-states supported by the Xeon CPU of the testbed.
  return {{"P0", 2261.0}, {"P1", 2128.0}, {"P4", 1729.0},
          {"P5", 1596.0}, {"P8", 1197.0}};
}

SpeedStepConfig dell_bios_config() {
  SpeedStepConfig cfg;
  cfg.states = xeon_pstates();
  // The Dell BIOS demand-based switching is coarse: one state per decision
  // on a sluggish control loop, with a demand estimator that saturates at
  // 100% busy — far slower than the 100-300 ms bursts it needs to follow,
  // and content to leave a ~80%-busy CPU in its lowest state (the
  // Figure 12(a) behaviour the paper observed).
  cfg.policy = GovernorPolicy::kDemandBased;
  cfg.control_interval = Duration::millis(1000);
  cfg.demand_margin = 0.15;
  return cfg;
}

SpeedStepModel::SpeedStepModel(sim::Engine& engine, ntier::Server& server,
                               SpeedStepConfig config)
    : engine_{engine},
      server_{server},
      config_{std::move(config)},
      ticker_{engine, engine.now() + config_.control_interval,
              config_.control_interval, [this](TimePoint at) { on_tick(at); }} {
  assert(!config_.states.empty());
  const int initial = config_.initial_state < 0
                          ? static_cast<int>(config_.states.size()) - 1
                          : config_.initial_state;
  last_busy_us_ = server_.busy_core_micros();
  apply(initial);
}

void SpeedStepModel::apply(int state) {
  state_ = std::clamp(state, 0, static_cast<int>(config_.states.size()) - 1);
  server_.set_clock_ratio(config_.states[static_cast<std::size_t>(state_)].mhz /
                          config_.states.front().mhz);
  log_.push_back(PStateTransition{engine_.now(), state_});
}

void SpeedStepModel::on_tick(TimePoint /*at*/) {
  const double busy = server_.busy_core_micros();
  const double interval_us =
      static_cast<double>(config_.control_interval.micros());
  const double util =
      (busy - last_busy_us_) / (interval_us * server_.cores());
  last_busy_us_ = busy;

  if (config_.policy == GovernorPolicy::kUtilizationThreshold) {
    if (util > config_.up_threshold && state_ > 0) {
      apply(state_ - 1);
    } else if (util < config_.down_threshold &&
               state_ < static_cast<int>(config_.states.size()) - 1) {
      apply(state_ + 1);
    }
    return;
  }

  // Demand-based: required clock from the (saturating) busy fraction, with
  // headroom; target the slowest sufficient P-state; step one toward it.
  const double required_mhz =
      std::min(1.0, util) *
      config_.states[static_cast<std::size_t>(state_)].mhz *
      (1.0 + config_.demand_margin);
  int target = 0;
  for (int s = static_cast<int>(config_.states.size()) - 1; s >= 0; --s) {
    if (config_.states[static_cast<std::size_t>(s)].mhz >= required_mhz) {
      target = s;
      break;
    }
    if (s == 0) target = 0;  // even the fastest clock cannot cover demand
  }
  if (target < state_) {
    apply(state_ - 1);
  } else if (target > state_) {
    apply(state_ + 1);
  }
}

std::vector<double> SpeedStepModel::state_residency(TimePoint t0,
                                                    TimePoint t1) const {
  std::vector<double> residency(config_.states.size(), 0.0);
  if (t1 <= t0 || log_.empty()) return residency;
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const TimePoint seg_start = std::max(log_[i].at, t0);
    const TimePoint seg_end =
        std::min(i + 1 < log_.size() ? log_[i + 1].at : t1, t1);
    if (seg_end > seg_start) {
      residency[static_cast<std::size_t>(log_[i].state)] +=
          (seg_end - seg_start).seconds_f();
    }
  }
  const double total = (t1 - t0).seconds_f();
  for (double& r : residency) r /= total;
  return residency;
}

}  // namespace tbd::transient
