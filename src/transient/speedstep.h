// Intel SpeedStep model (Section IV-C).
//
// The CPU exposes a table of P-states (Table II); a BIOS-level governor
// samples CPU utilization on a coarse control interval and moves ONE state
// per decision — exactly the sluggishness the paper blames: "the Dell BIOS-
// level SpeedStep control algorithm is unable to adjust the CPU clock speed
// quickly enough to match the bursty real-time workload". When a burst
// arrives while the clock is low, the server congests at the low-state
// throughput ceiling until the governor catches up, producing one visible
// throughput trend per P-state in the load/throughput plot (Figure 12(b)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ntier/server.h"
#include "sim/engine.h"
#include "util/time.h"

namespace tbd::transient {

struct PState {
  std::string name;
  double mhz = 0.0;
};

/// Table II: the P-states supported by the paper's Xeon CPUs.
[[nodiscard]] std::vector<PState> xeon_pstates();

enum class GovernorPolicy : std::uint8_t {
  /// Demand-based switching (the Dell BIOS behaviour the paper describes):
  /// estimate required clock as busy_fraction * current_mhz * (1 + margin),
  /// target the slowest P-state that satisfies it, and move ONE state per
  /// control interval toward the target. Under saturation the busy fraction
  /// caps at 1.0, so the estimator systematically lags a bursty demand —
  /// the mismatch of Section IV-C.
  kDemandBased,
  /// Classic dual-threshold hysteresis on the busy fraction.
  kUtilizationThreshold,
};

struct SpeedStepConfig {
  std::vector<PState> states;  // ordered fastest (P0) to slowest
  GovernorPolicy policy = GovernorPolicy::kDemandBased;
  /// Governor decision period (BIOS demand-based switching).
  Duration control_interval = Duration::millis(500);
  /// Demand-based: headroom margin on the clock estimate.
  double demand_margin = 0.15;
  /// Threshold policy: busy fraction above which the governor steps one
  /// state faster / below which it steps one slower.
  double up_threshold = 0.90;
  double down_threshold = 0.70;
  /// Initial state index (default: slowest, the power-saving choice).
  int initial_state = -1;  // -1 = slowest
};

[[nodiscard]] SpeedStepConfig dell_bios_config();

struct PStateTransition {
  TimePoint at;
  int state = 0;  // index into states
};

class SpeedStepModel {
 public:
  SpeedStepModel(sim::Engine& engine, ntier::Server& server,
                 SpeedStepConfig config);
  SpeedStepModel(const SpeedStepModel&) = delete;
  SpeedStepModel& operator=(const SpeedStepModel&) = delete;

  [[nodiscard]] int current_state() const { return state_; }
  [[nodiscard]] const std::vector<PStateTransition>& log() const { return log_; }

  /// Time-weighted fraction spent in each state over [t0, t1]; call after
  /// the run.
  [[nodiscard]] std::vector<double> state_residency(TimePoint t0, TimePoint t1) const;

 private:
  void on_tick(TimePoint at);
  void apply(int state);

  sim::Engine& engine_;
  ntier::Server& server_;
  SpeedStepConfig config_;
  sim::PeriodicTask ticker_;
  int state_ = 0;
  double last_busy_us_ = 0.0;
  std::vector<PStateTransition> log_;
};

}  // namespace tbd::transient
