#include "transient/gc_model.h"

#include <algorithm>
#include <cassert>

namespace tbd::transient {

GcConfig jdk15_config() {
  GcConfig cfg;
  cfg.collector = CollectorKind::kSerialStopTheWorld;
  return cfg;
}

GcConfig jdk16_config() {
  GcConfig cfg;
  cfg.collector = CollectorKind::kParallelConcurrent;
  return cfg;
}

GcModel::GcModel(sim::Engine& engine, ntier::Server& server, GcConfig config,
                 Rng rng)
    : engine_{engine}, server_{server}, config_{config}, rng_{rng} {
  assert(config_.young_gen_bytes > 0.0);
  assert(config_.major_every_bytes > 0.0);
}

Duration GcModel::jittered(Duration mean) {
  if (config_.pause_cv <= 0.0) return mean;
  const double shape = 1.0 / (config_.pause_cv * config_.pause_cv);
  const double us =
      rng_.gamma(shape, static_cast<double>(mean.micros()) / shape);
  return Duration::micros(std::max<std::int64_t>(1, static_cast<std::int64_t>(us)));
}

void GcModel::on_alloc(double bytes) {
  since_minor_ += bytes;
  since_major_ += bytes;
  if (collecting_) return;  // allocations during GC roll into the next cycle
  if (since_major_ >= config_.major_every_bytes) {
    trigger(/*major=*/true);
  } else if (since_minor_ >= config_.young_gen_bytes) {
    trigger(/*major=*/false);
  }
}

void GcModel::trigger(bool major) {
  collecting_ = true;
  since_minor_ = 0.0;
  if (major) {
    since_major_ = 0.0;
    ++majors_;
  } else {
    ++minors_;
  }

  const bool serial = config_.collector == CollectorKind::kSerialStopTheWorld;
  const Duration pause =
      jittered(serial ? (major ? config_.serial_major_pause : config_.serial_minor_pause)
                      : (major ? config_.parallel_major_pause
                               : config_.parallel_minor_pause));
  const TimePoint start = engine_.now();
  server_.pause();
  engine_.schedule_after(pause, [this, start, major] {
    server_.resume();
    log_.push_back(GcEvent{start, engine_.now(), major});
    if (config_.collector == CollectorKind::kParallelConcurrent) {
      // Concurrent phase: background GC threads steal CPU but requests run.
      server_.set_background_cores(config_.concurrent_cores);
      const Duration phase = major ? config_.concurrent_major : config_.concurrent_minor;
      engine_.schedule_after(phase, [this] {
        server_.set_background_cores(0.0);
        collecting_ = false;
      });
    } else {
      collecting_ = false;
    }
  });
}

}  // namespace tbd::transient
