#include "app/analysis.h"

#include <cassert>

#include "core/report.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace tbd::app {

SystemAnalysis analyze_system(const ExperimentResult& result,
                              const std::vector<core::ServiceTimeTable>& tables,
                              Duration width,
                              const core::DetectorConfig& config) {
  assert(tables.size() == result.logs.size());
  SystemAnalysis analysis;
  analysis.spec =
      core::IntervalSpec::over(result.window_start, result.window_end, width);
  // The Section III pipeline treats every server independently, so the
  // per-server detections fan out across the pool; slot s of the output is
  // always server s, independent of scheduling.
  analysis.detections.resize(result.logs.size());
  std::size_t total_records = 0;
  for (const auto& log : result.logs) total_records += log.size();
  obs::Registry::global()
      .counter("analysis_records_total")
      .add(total_records);
  {
    TBD_SPAN("analysis.detect_servers");
    shared_pool().parallel_for_indexed(result.logs.size(), [&](std::size_t s) {
      TBD_SPAN("analysis.server");
      analysis.detections[s] = core::detect_bottlenecks(
          result.logs[s], analysis.spec, tables[s], config);
    });
  }
  for (std::size_t s = 0; s < result.logs.size(); ++s) {
    analysis.names.push_back(result.servers[s].name);
  }
  {
    TBD_SPAN("analysis.rank");
    analysis.report =
        core::rank_bottlenecks(analysis.detections, analysis.names);
  }
  return analysis;
}

std::string to_string(const SystemAnalysis& analysis) {
  std::string out;
  for (std::size_t s = 0; s < analysis.detections.size(); ++s) {
    out += core::summarize(analysis.detections[s], analysis.names[s]);
  }
  out += '\n';
  out += core::to_string(analysis.report);
  return out;
}

}  // namespace tbd::app
