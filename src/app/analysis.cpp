#include "app/analysis.h"

#include <cassert>

#include "core/report.h"

namespace tbd::app {

SystemAnalysis analyze_system(const ExperimentResult& result,
                              const std::vector<core::ServiceTimeTable>& tables,
                              Duration width,
                              const core::DetectorConfig& config) {
  assert(tables.size() == result.logs.size());
  SystemAnalysis analysis;
  analysis.spec =
      core::IntervalSpec::over(result.window_start, result.window_end, width);
  for (std::size_t s = 0; s < result.logs.size(); ++s) {
    analysis.detections.push_back(core::detect_bottlenecks(
        result.logs[s], analysis.spec, tables[s], config));
    analysis.names.push_back(result.servers[s].name);
  }
  analysis.report =
      core::rank_bottlenecks(analysis.detections, analysis.names);
  return analysis;
}

std::string to_string(const SystemAnalysis& analysis) {
  std::string out;
  for (std::size_t s = 0; s < analysis.detections.size(); ++s) {
    out += core::summarize(analysis.detections[s], analysis.names[s]);
  }
  out += '\n';
  out += core::to_string(analysis.report);
  return out;
}

}  // namespace tbd::app
