// One-call experiment runner: topology + workload + transient injectors ->
// run -> traces, metrics, logs. Shared by the examples and every benchmark
// binary; each of the paper's figures is "configure, run, analyze".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/throughput_calculator.h"
#include "metrics/response_collector.h"
#include "ntier/request_class.h"
#include "ntier/topology.h"
#include "ntier/txn_driver.h"
#include "trace/records.h"
#include "trace/sink.h"
#include "transient/gc_model.h"
#include "transient/speedstep.h"
#include "workload/browse_mix.h"
#include "workload/client_population.h"

namespace tbd::app {

struct ExperimentConfig {
  ntier::TopologyConfig topology = ntier::paper_topology();
  ntier::RequestClassList classes = workload::rubbos_browse_mix();
  ntier::TxnDriver::Config driver;
  workload::ClientConfig clients;  // num_clients is overridden by `workload`

  /// Concurrent users (the paper's WL axis).
  int workload = 1000;
  Duration warmup = Duration::seconds(10);
  Duration duration = Duration::seconds(60);
  std::uint64_t seed = 42;

  /// JVM GC on every app-tier server (Section IV-A). Defaults to the JDK 1.6
  /// parallel collector — the benign configuration.
  bool gc_on_app = true;
  transient::GcConfig gc = transient::jdk16_config();

  /// SpeedStep on every db-tier server (Section IV-C); disabled = P0 pinned.
  bool speedstep_on_db = false;
  transient::SpeedStepConfig speedstep = transient::dell_bios_config();

  /// Keep the raw message stream (needed for trace reconstruction).
  bool record_messages = false;
  Duration util_sample_period = Duration::seconds(1);
};

struct ServerInfo {
  std::string name;
  ntier::TierKind tier;
  int cores = 1;
};

struct ExperimentResult {
  // Measurement window (after warmup).
  TimePoint window_start;
  TimePoint window_end;

  std::vector<ServerInfo> servers;
  /// Per-server request logs from passive tracing (dense server index).
  std::vector<trace::RequestLog> logs;
  /// Raw message stream (empty unless record_messages).
  std::vector<trace::Message> messages;

  /// Client-side samples.
  std::vector<metrics::PageSample> pages;

  /// Utilization series (one sample per util_sample_period, from t=0).
  std::vector<std::vector<double>> util;
  Duration util_period;
  std::vector<trace::NetCounters> net;
  std::vector<double> disk_busy_us;

  /// Stop-the-world GC log per app server (empty when GC disabled).
  std::vector<std::vector<transient::GcEvent>> gc_logs;
  /// P-state transition log / residency per db server.
  std::vector<std::vector<transient::PStateTransition>> pstate_logs;
  std::vector<std::vector<double>> pstate_residency;

  std::uint64_t pages_started = 0;
  std::uint64_t pages_completed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t engine_events = 0;

  // ---- convenience ---------------------------------------------------------

  [[nodiscard]] int server_index_of(ntier::TierKind tier, int i) const;
  /// Pages per second completed inside the measurement window.
  [[nodiscard]] double goodput() const;
  /// Mean end-to-end response time (seconds) in the window.
  [[nodiscard]] double mean_rt_s() const;
  /// Fraction of in-window pages above the threshold.
  [[nodiscard]] double fraction_rt_above(Duration threshold) const;
  /// Mean CPU utilization of one server across the window.
  [[nodiscard]] double mean_util(int server_index) const;
};

/// Builds the world, runs warmup + duration, extracts all observables.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs a low-workload calibration pass (same topology/classes/seed) and
/// returns the per-server service-time tables the throughput normalization
/// needs (Section III-B "service time approximation ... when the production
/// system is under low workload").
[[nodiscard]] std::vector<core::ServiceTimeTable> calibrate_service_times(
    ExperimentConfig config, int calibration_workload = 400);

}  // namespace tbd::app
