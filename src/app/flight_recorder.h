// Transaction flight recorder: one pass from request records to artifacts.
//
// Runs the full pipeline behind tools/tbd_timeline and the
// --timeline-out/--attribution-out flags of tbd_analyze:
//
//   split by server -> per-server detection + concurrency profile (fanned
//   out on the shared thread pool, slot-indexed so the result is identical
//   at any TBD_THREADS) -> transaction-tree assembly (trace/txn_tree.h) ->
//   critical-path attribution (core/attribution.h) -> combined Perfetto
//   timeline (obs/timeline.h).
//
// Everything downstream of the inputs is deterministic: per-server stages
// write into pre-sized slots, reductions run in server/transaction order,
// and the writers use fixed-precision formatting — so the timeline JSON and
// attribution NDJSON are byte-identical across thread counts and golden-
// testable.
#pragma once

#include <string>
#include <vector>

#include "core/attribution.h"
#include "core/detector.h"
#include "obs/manifest.h"
#include "trace/txn_tree.h"
#include "util/thread_pool.h"
#include "util/time.h"

namespace tbd::app {

struct FlightConfig {
  Duration width = Duration::millis(50);
  /// Estimate per-class service times from the first S seconds of each
  /// server's records (0 = whole log, masked at a low quantile).
  double calib_seconds = 0.0;
  /// > 0: skip N* estimation and classify against this congestion point on
  /// every server — the paper's "carry N* over from a calibration window"
  /// mode, and the way to get episode overlays from captures too short for
  /// the estimator to converge on.
  double nstar_override = 0.0;
  core::DetectorConfig detector;
  core::AttributionConfig attribution;
};

struct ServerFlight {
  trace::ServerIndex server = 0;
  trace::RequestLog log;  // this server's records, arrival order
  core::DetectionResult detection;
  trace::ConcurrencyProfile profile;
};

struct FlightRecord {
  std::vector<ServerFlight> servers;  // ascending server id
  trace::TxnAssembly assembly;
  core::AttributionReport attribution;
};

/// Full flight-record pass over a merged record set (servers mixed).
[[nodiscard]] FlightRecord flight_record(const trace::RequestLog& records,
                                         const FlightConfig& config,
                                         ThreadPool& pool);

/// The combined Perfetto/Chrome timeline: per-server visit tracks, episode
/// overlay tracks, and per-transaction flows. Deterministic.
[[nodiscard]] std::string timeline_json(const FlightRecord& rec);
bool write_timeline(const std::string& path, const FlightRecord& rec);

/// Output file paths for one flight-recorder run; empty = skip.
struct FlightOutputs {
  std::string timeline;         // Perfetto/Chrome timeline JSON
  std::string attribution;      // attribution NDJSON
  std::string attribution_csv;  // attribution CSV
  std::string record_log;       // analyzed records, TBDR v2 segment log
  std::string trace;            // pipeline span trace (wall clock)
  std::string manifest;         // run manifest
};

/// Shared CLI tail for tbd_timeline and tbd_analyze: prints the
/// assembly/episode/band summary, writes every requested artifact, and
/// exports the span trace + run manifest. Returns a process exit code.
int emit_flight_outputs(const FlightRecord& rec, const FlightOutputs& out,
                        obs::RunInfo info);

}  // namespace tbd::app
