#include "app/experiment.h"

#include <cassert>
#include <memory>

#include "metrics/utilization_sampler.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace tbd::app {

int ExperimentResult::server_index_of(ntier::TierKind tier, int i) const {
  int seen = 0;
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (servers[s].tier == tier) {
      if (seen == i) return static_cast<int>(s);
      ++seen;
    }
  }
  return -1;
}

double ExperimentResult::goodput() const {
  std::size_t n = 0;
  for (const auto& p : pages) {
    if (p.completed >= window_start && p.completed < window_end) ++n;
  }
  const double span = (window_end - window_start).seconds_f();
  return span > 0.0 ? static_cast<double>(n) / span : 0.0;
}

double ExperimentResult::mean_rt_s() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : pages) {
    if (p.completed >= window_start && p.completed < window_end) {
      sum += p.response_time.seconds_f();
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double ExperimentResult::fraction_rt_above(Duration threshold) const {
  std::size_t n = 0;
  std::size_t above = 0;
  for (const auto& p : pages) {
    if (p.completed >= window_start && p.completed < window_end) {
      ++n;
      if (p.response_time > threshold) ++above;
    }
  }
  return n ? static_cast<double>(above) / static_cast<double>(n) : 0.0;
}

double ExperimentResult::mean_util(int server_index) const {
  const auto& series = util[static_cast<std::size_t>(server_index)];
  const auto first =
      static_cast<std::size_t>(window_start.micros() / util_period.micros());
  const auto last =
      static_cast<std::size_t>(window_end.micros() / util_period.micros());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = first; i < last && i < series.size(); ++i) {
    sum += series[i];
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

namespace {
// Flushes the run's single-threaded component counters (engine, sink,
// sampler) into the global registry. One batch of relaxed adds per run, so
// the simulation hot path itself carries no atomic traffic.
void publish_run_stats(const sim::Engine& engine, const trace::TraceSink& sink,
                       const metrics::UtilizationSampler& sampler) {
  auto& reg = obs::Registry::global();
  const auto& es = engine.stats();
  reg.counter("tbd_engine_events_total").add(es.executed);
  reg.counter("tbd_engine_events_scheduled_total").add(es.scheduled);
  reg.counter("tbd_engine_events_cancelled_total").add(es.cancelled);
  reg.gauge("tbd_engine_heap_high_water")
      .update_max(static_cast<double>(es.heap_high_water));
  reg.counter("tbd_sink_messages_total").add(sink.total_messages_seen());
  reg.counter("tbd_sink_bytes_total").add(sink.total_bytes_seen());
  reg.counter("tbd_sink_messages_dropped_total").add(sink.messages_dropped());
  reg.counter("tbd_util_samples_total").add(sampler.samples_taken());
  reg.counter("tbd_experiment_runs_total").inc();
}
}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  TBD_SPAN("experiment.run");
  sim::Engine engine;
  Rng root{config.seed};

  ntier::Topology topology{engine, config.topology};
  trace::TraceSink sink{topology.total_servers(), config.record_messages};
  ntier::TxnDriver driver{engine,       topology, config.classes,
                          sink,         root.fork(1), config.driver};

  metrics::ResponseCollector responses;
  workload::ClientConfig client_cfg = config.clients;
  client_cfg.num_clients = config.workload;
  workload::ClientPopulation clients{
      engine, driver, client_cfg, root.fork(2),
      [&responses](const ntier::TxnDriver::PageResult& r) {
        responses.record(metrics::PageSample{
            .completed = r.started + r.response_time,
            .response_time = r.response_time,
            .class_id = r.class_id,
            .retransmissions = r.retransmissions,
        });
      }};

  // Transient injectors.
  std::vector<std::unique_ptr<transient::GcModel>> gc_models;
  if (config.gc_on_app) {
    for (int i = 0; i < topology.tier_size(ntier::TierKind::kApp); ++i) {
      gc_models.push_back(std::make_unique<transient::GcModel>(
          engine, topology.server(ntier::TierKind::kApp, i), config.gc,
          root.fork(100 + static_cast<std::uint64_t>(i))));
      driver.set_app_alloc_hook(
          i, [gc = gc_models.back().get()](double bytes) { gc->on_alloc(bytes); });
    }
  }
  std::vector<std::unique_ptr<transient::SpeedStepModel>> governors;
  if (config.speedstep_on_db) {
    for (int i = 0; i < topology.tier_size(ntier::TierKind::kDb); ++i) {
      governors.push_back(std::make_unique<transient::SpeedStepModel>(
          engine, topology.server(ntier::TierKind::kDb, i), config.speedstep));
    }
  }

  metrics::UtilizationSampler sampler{engine, topology,
                                      config.util_sample_period};

  clients.start();
  const TimePoint end_at =
      TimePoint::origin() + config.warmup + config.duration;
  {
    TBD_SPAN("experiment.simulate");
    engine.run_until(end_at);
  }

  // ---- extract --------------------------------------------------------------
  TBD_SPAN("experiment.extract");
  publish_run_stats(engine, sink, sampler);
  ExperimentResult result;
  result.window_start = TimePoint::origin() + config.warmup;
  result.window_end = end_at;
  result.util_period = config.util_sample_period;

  const ntier::TierKind tiers[] = {ntier::TierKind::kWeb, ntier::TierKind::kApp,
                                   ntier::TierKind::kMw, ntier::TierKind::kDb};
  for (const auto tier : tiers) {
    for (int i = 0; i < topology.tier_size(tier); ++i) {
      const auto& server = topology.server(tier, i);
      result.servers.push_back(
          ServerInfo{server.name(), tier, server.cores()});
    }
  }
  for (trace::ServerIndex s = 0; s < topology.total_servers(); ++s) {
    result.logs.push_back(sink.server_log(s));
    result.util.push_back(sampler.series(s));
    result.net.push_back(sink.net_counters(s));
    result.disk_busy_us.push_back(
        topology.server_by_index(s).disk_busy_micros());
  }
  result.messages = sink.messages();
  result.pages = responses.samples();

  for (const auto& gc : gc_models) result.gc_logs.push_back(gc->log());
  for (const auto& gov : governors) {
    result.pstate_logs.push_back(gov->log());
    result.pstate_residency.push_back(
        gov->state_residency(result.window_start, result.window_end));
  }

  result.pages_started = driver.transactions_started();
  result.pages_completed = driver.transactions_completed();
  result.retransmissions = driver.retransmissions();
  result.engine_events = engine.events_executed();
  return result;
}

std::vector<core::ServiceTimeTable> calibrate_service_times(
    ExperimentConfig config, int calibration_workload) {
  config.workload = calibration_workload;
  config.warmup = Duration::seconds(5);
  config.duration = Duration::seconds(20);
  config.clients.bursts_enabled = false;
  config.gc_on_app = false;        // no freezes polluting intra-node delays
  config.speedstep_on_db = false;  // calibrate at the reference clock
  config.record_messages = false;

  const ExperimentResult result = run_experiment(config);
  std::vector<core::ServiceTimeTable> tables;
  tables.reserve(result.logs.size());
  for (const auto& log : result.logs) {
    tables.push_back(core::estimate_service_times(log));
  }
  return tables;
}

}  // namespace tbd::app
