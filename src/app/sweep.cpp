#include "app/sweep.h"

#include <memory>
#include <optional>

#include "obs/metrics.h"
#include "obs/span.h"

namespace tbd::app {

namespace {

// Dispatches to the shared pool unless the caller pinned a width, in which
// case a private pool of that size runs this sweep only.
void for_each_config(std::size_t n, const SweepOptions& options,
                     const std::function<void(std::size_t)>& fn) {
  if (options.threads > 0 && options.threads != shared_pool().size()) {
    ThreadPool pool{options.threads};
    pool.parallel_for_indexed(n, fn);
    return;
  }
  shared_pool().parallel_for_indexed(n, fn);
}

}  // namespace

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs, const SweepOptions& options) {
  TBD_SPAN("sweep.run");
  obs::Registry::global().counter("tbd_sweep_configs_total").add(configs.size());
  std::vector<std::optional<ExperimentResult>> slots(configs.size());
  for_each_config(configs.size(), options,
                  [&](std::size_t i) { slots[i] = run_experiment(configs[i]); });
  std::vector<ExperimentResult> results;
  results.reserve(configs.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

std::vector<double> run_sweep_metric(
    const std::vector<ExperimentConfig>& configs,
    const std::function<double(const ExperimentResult&)>& metric,
    const SweepOptions& options) {
  TBD_SPAN("sweep.run");
  obs::Registry::global().counter("tbd_sweep_configs_total").add(configs.size());
  std::vector<double> values(configs.size(), 0.0);
  for_each_config(configs.size(), options, [&](std::size_t i) {
    values[i] = metric(run_experiment(configs[i]));
  });
  return values;
}

}  // namespace tbd::app
