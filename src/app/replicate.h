// Replication: run the same experiment across independent seeds and report
// mean +- a Student-t confidence half-width for any scalar metric. The
// figure benches are single-seed (deterministic regeneration is the
// priority); this harness is for answering "is that difference real?"
// before trusting a comparison.
#pragma once

#include <functional>
#include <vector>

#include "app/experiment.h"
#include "util/stats.h"

namespace tbd::app {

struct Replicated {
  double mean = 0.0;
  /// Half-width of the two-sided confidence interval at the requested level.
  double half_width = 0.0;
  std::vector<double> samples;

  [[nodiscard]] double lo() const { return mean - half_width; }
  [[nodiscard]] double hi() const { return mean + half_width; }
  /// True when this interval does not overlap `other`'s.
  [[nodiscard]] bool clearly_above(const Replicated& other) const {
    return lo() > other.hi();
  }
};

/// Runs `config` with seeds seed_base..seed_base+replicas-1 and evaluates
/// `metric` on each result. confidence is two-sided (default 95%).
[[nodiscard]] Replicated replicate(
    ExperimentConfig config, int replicas,
    const std::function<double(const ExperimentResult&)>& metric,
    std::uint64_t seed_base = 1000, double confidence = 0.95);

}  // namespace tbd::app
