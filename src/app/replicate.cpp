#include "app/replicate.h"

#include <cassert>
#include <cmath>

#include "app/sweep.h"

namespace tbd::app {

Replicated replicate(ExperimentConfig config, int replicas,
                     const std::function<double(const ExperimentResult&)>& metric,
                     std::uint64_t seed_base, double confidence) {
  assert(replicas >= 2);
  std::vector<ExperimentConfig> configs;
  configs.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    config.seed = seed_base + static_cast<std::uint64_t>(r);
    configs.push_back(config);
  }
  Replicated out;
  out.samples = run_sweep_metric(configs, metric);
  RunningStats stats;
  for (const double value : out.samples) stats.add(value);
  out.mean = stats.mean();
  // Two-sided t interval: quantile at 1 - (1-confidence)/2.
  const double p = 1.0 - (1.0 - confidence) / 2.0;
  const double t = student_t_quantile(p, replicas - 1);
  out.half_width = t * stats.stddev() / std::sqrt(static_cast<double>(replicas));
  return out;
}

}  // namespace tbd::app
