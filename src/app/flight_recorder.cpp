#include "app/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "trace/segment_log.h"

namespace tbd::app {

namespace {

/// Per-server detection honoring the N* override: the full
/// detect_bottlenecks pipeline, but with classification pinned to the
/// carried-over congestion point instead of the in-window estimate.
core::DetectionResult detect_server(const trace::RequestLog& log,
                                    const core::IntervalSpec& spec,
                                    const core::ServiceTimeTable& table,
                                    const FlightConfig& config) {
  if (config.nstar_override <= 0.0) {
    return core::detect_bottlenecks(log, spec, table, config.detector);
  }
  core::DetectionResult result;
  result.spec = spec;
  result.load = core::compute_load(log, spec);
  result.throughput =
      core::compute_throughput(log, spec, table, config.detector.throughput);
  result.nstar = core::estimate_congestion_point(result.load, result.throughput,
                                                 config.detector.nstar);
  result.nstar.n_star = config.nstar_override;
  result.nstar.converged = true;
  result.states = core::classify_intervals(result.load, result.throughput,
                                           result.nstar, config.detector);
  result.episodes =
      core::extract_episodes(result.states, result.load, result.spec);
  return result;
}

}  // namespace

FlightRecord flight_record(const trace::RequestLog& records,
                           const FlightConfig& config, ThreadPool& pool) {
  TBD_SPAN("flight.record");
  FlightRecord rec;
  std::map<trace::ServerIndex, trace::RequestLog> by_server;
  TimePoint t_min = TimePoint::max();
  TimePoint t_max;
  for (const trace::RequestRecord& r : records) {
    by_server[r.server].push_back(r);
    t_min = std::min(t_min, r.arrival);
    t_max = std::max(t_max, r.departure);
  }
  rec.servers.reserve(by_server.size());
  for (auto& [server, log] : by_server) {
    std::sort(log.begin(), log.end(),
              [](const trace::RequestRecord& a, const trace::RequestRecord& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.departure != b.departure) return a.departure < b.departure;
                return a.txn < b.txn;
              });
    ServerFlight sf;
    sf.server = server;
    sf.log = std::move(log);
    rec.servers.push_back(std::move(sf));
  }
  if (rec.servers.empty()) return rec;

  pool.parallel_for_indexed(rec.servers.size(), [&](std::size_t s) {
    TBD_SPAN("flight.server");
    ServerFlight& sf = rec.servers[s];
    trace::RequestLog calib = sf.log;
    if (config.calib_seconds > 0.0) {
      const TimePoint cutoff =
          t_min + Duration::from_seconds_f(config.calib_seconds);
      calib.erase(std::remove_if(calib.begin(), calib.end(),
                                 [&](const trace::RequestRecord& r) {
                                   return r.departure >= cutoff;
                                 }),
                  calib.end());
      if (calib.empty()) calib = sf.log;
    }
    const core::ServiceTimeTable table = core::estimate_service_times(calib);
    const auto spec = core::IntervalSpec::over(t_min, t_max, config.width);
    sf.detection = detect_server(sf.log, spec, table, config);
    sf.profile = trace::ConcurrencyProfile::build(sf.log);
  });

  trace::ProfileMap profiles;
  std::vector<trace::ServerIndex> servers;
  std::vector<core::DetectionResult> detections;
  for (const ServerFlight& sf : rec.servers) {
    profiles.emplace(sf.server, sf.profile);
    servers.push_back(sf.server);
    detections.push_back(sf.detection);
  }
  rec.assembly = trace::assemble_transactions(records, &profiles);
  rec.attribution = core::attribute_latency(rec.assembly.txns, servers,
                                            detections, profiles,
                                            config.attribution);

  auto& reg = obs::Registry::global();
  reg.counter("tbd_flight_txns_total").add(rec.assembly.txns.size());
  reg.counter("tbd_flight_visits_total").add(rec.assembly.visits);
  reg.counter("tbd_flight_orphan_visits_total").add(rec.assembly.orphan_visits);
  reg.counter("tbd_flight_dropped_unclosed_total")
      .add(rec.assembly.dropped_unclosed);
  return rec;
}

std::string timeline_json(const FlightRecord& rec) {
  TBD_SPAN("flight.timeline");
  obs::TimelineBuilder tl;
  using Builder = obs::TimelineBuilder;
  std::map<trace::ServerIndex, Builder::TrackId> visit_track;
  for (const ServerFlight& sf : rec.servers) {
    const std::string label = "server " + std::to_string(sf.server);
    visit_track[sf.server] = tl.add_track(label);
    const auto overlay = tl.add_overlay_track(label + " episodes");
    // Maximal runs of one state render as one band: congested = amber,
    // frozen (the POIs) = red.
    const auto& states = sf.detection.states;
    const auto& spec = sf.detection.spec;
    std::size_t i = 0;
    while (i < states.size()) {
      const core::IntervalState s = states[i];
      if (s != core::IntervalState::kCongested &&
          s != core::IntervalState::kFrozen) {
        ++i;
        continue;
      }
      std::size_t j = i;
      double peak = 0.0;
      while (j < states.size() && states[j] == s) {
        peak = std::max(peak, sf.detection.load[j]);
        ++j;
      }
      const bool frozen = s == core::IntervalState::kFrozen;
      tl.add_overlay(overlay, spec.interval_start(i).micros(),
                     spec.interval_start(j).micros(),
                     frozen ? "frozen" : "congested",
                     frozen ? "terrible" : "bad",
                     {{"peak_load", Builder::num(peak)},
                      {"n_star", Builder::num(sf.detection.nstar.n_star)}});
      i = j;
    }
  }

  for (const trace::TxnTree& t : rec.assembly.txns) {
    std::vector<std::pair<Builder::SliceRef, std::int64_t>> points;
    points.reserve(t.visits.size());
    for (const trace::TxnVisit& v : t.visits) {
      const auto track = visit_track.find(v.server);
      if (track == visit_track.end()) continue;
      Builder::Args args{
          {"txn", Builder::num(static_cast<std::int64_t>(t.id))},
          {"queue_us", Builder::num(v.queue_us)},
          {"service_us", Builder::num(v.service_us)},
          {"conc_at_arrival",
           Builder::num(static_cast<std::int64_t>(v.concurrency_at_arrival))},
          {"depth", Builder::num(static_cast<std::int64_t>(v.depth))},
      };
      if (v.orphan) args.emplace_back("orphan", "true");
      const auto ref = tl.add_slice(
          track->second, v.arrival.micros(), v.departure.micros(),
          "visit c" + std::to_string(v.class_id), "visit", std::move(args));
      points.emplace_back(ref, v.arrival.micros());
    }
    // Visits are stored in (arrival, departure desc) order, so the flow
    // steps already run request-message order: root, then each downstream
    // call as it is issued.
    if (points.size() >= 2) {
      tl.add_flow(t.id, "txn " + std::to_string(t.id), std::move(points));
    }
  }
  return tl.to_json();
}

bool write_timeline(const std::string& path, const FlightRecord& rec) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << timeline_json(rec);
  return static_cast<bool>(out);
}

int emit_flight_outputs(const FlightRecord& rec, const FlightOutputs& out,
                        obs::RunInfo info) {
  std::printf(
      "assembled %zu transactions (%llu visits, %llu orphans, "
      "%llu unclosed dropped)\n",
      rec.assembly.txns.size(),
      static_cast<unsigned long long>(rec.assembly.visits),
      static_cast<unsigned long long>(rec.assembly.orphan_visits),
      static_cast<unsigned long long>(rec.assembly.dropped_unclosed));
  for (const ServerFlight& sf : rec.servers) {
    std::printf("server %u: N*=%.1f%s, %zu episode(s), longest %s\n",
                static_cast<unsigned>(sf.server), sf.detection.nstar.n_star,
                sf.detection.nstar.converged ? "" : " (unsaturated)",
                sf.detection.episodes.size(),
                sf.detection.longest_episode().to_string().c_str());
  }
  for (const core::BandAttribution& band : rec.attribution.bands) {
    std::printf("band %-5s %6llu txn(s)", band.band.c_str(),
                static_cast<unsigned long long>(band.txns));
    for (const core::ServerAttribution& a : band.servers) {
      if (band.latency_us <= 0.0) continue;
      std::printf("  s%u q_in=%.0f%%", static_cast<unsigned>(a.server),
                  100.0 * a.queue_in_us / band.latency_us);
    }
    std::printf("\n");
  }

  if (!out.timeline.empty() && !write_timeline(out.timeline, rec)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.timeline.c_str());
    return 1;
  }
  if (!out.attribution.empty() &&
      !core::write_attribution_ndjson(out.attribution, rec.attribution)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.attribution.c_str());
    return 1;
  }
  if (!out.attribution_csv.empty() &&
      !core::write_attribution_csv(out.attribution_csv, rec.attribution)) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 out.attribution_csv.c_str());
    return 1;
  }
  if (!out.record_log.empty()) {
    // Archive the flight's input records as a TBDR v2 segment log: re-merge
    // the per-server logs into the departure order records.h requires, so
    // the archive round-trips through every loader.
    trace::RequestLog merged;
    std::size_t total = 0;
    for (const ServerFlight& sf : rec.servers) total += sf.log.size();
    merged.reserve(total);
    for (const ServerFlight& sf : rec.servers) {
      merged.insert(merged.end(), sf.log.begin(), sf.log.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const trace::RequestRecord& a,
                        const trace::RequestRecord& b) {
                       return a.departure < b.departure;
                     });
    if (!trace::save_request_log_v2(out.record_log, merged)) {
      std::fprintf(stderr, "error: cannot write %s\n", out.record_log.c_str());
      return 1;
    }
    std::printf("record log: %zu records -> %s\n", merged.size(),
                out.record_log.c_str());
  }
  if (!out.trace.empty() || !out.manifest.empty()) {
    auto& registry = obs::Registry::global();
    obs::publish_pool_stats(registry);
    const auto& tracer = obs::Tracer::global();
    if (!out.trace.empty() && !tracer.write_chrome_trace(out.trace)) {
      std::fprintf(stderr, "error: cannot write %s\n", out.trace.c_str());
      return 1;
    }
    if (!out.manifest.empty() &&
        !obs::write_run_manifest(out.manifest, info, registry, tracer)) {
      std::fprintf(stderr, "error: cannot write %s\n", out.manifest.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace tbd::app
