// Parallel experiment execution with deterministic results.
//
// Every figure bench is a workload sweep: N independent ExperimentConfigs,
// each simulated by its own single-threaded Engine seeded from its own
// config. run_sweep() fans those simulations out across the process thread
// pool and returns results IN INPUT ORDER, so the numbers (and every CSV
// derived from them) are bit-identical whether the sweep ran on 1 thread or
// 16 — scheduling only changes wall-clock time, never output.
//
// Thread count: SweepOptions::threads, else the shared pool sized from
// TBD_THREADS / hardware concurrency. TBD_THREADS=1 reproduces the historic
// serial path exactly (no worker threads are started).
#pragma once

#include <functional>
#include <vector>

#include "app/experiment.h"
#include "util/thread_pool.h"

namespace tbd::app {

struct SweepOptions {
  /// Execution width; <= 0 uses the shared pool (TBD_THREADS / hardware).
  int threads = 0;
};

/// Runs every config (each task owns a private Engine + RNG) and returns the
/// results in input order.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs,
    const SweepOptions& options = {});

/// As run_sweep, but immediately reduces each result through `metric`,
/// discarding the (large) ExperimentResult as soon as its scalar is taken.
/// Useful for replication studies where only a summary number is kept.
[[nodiscard]] std::vector<double> run_sweep_metric(
    const std::vector<ExperimentConfig>& configs,
    const std::function<double(const ExperimentResult&)>& metric,
    const SweepOptions& options = {});

}  // namespace tbd::app
