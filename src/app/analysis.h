// Whole-system analysis convenience: run the Section III pipeline over every
// server of an experiment (or any set of request logs) and produce the
// per-server detections plus the ranked system report.
#pragma once

#include <string>
#include <vector>

#include "app/experiment.h"
#include "core/detector.h"
#include "core/system_report.h"

namespace tbd::app {

struct SystemAnalysis {
  core::IntervalSpec spec;
  std::vector<core::DetectionResult> detections;  // per dense server index
  std::vector<std::string> names;
  core::SystemReport report;
};

/// Analyzes every server of `result` at `width` granularity using the given
/// calibration tables (one per server, as from calibrate_service_times).
[[nodiscard]] SystemAnalysis analyze_system(
    const ExperimentResult& result,
    const std::vector<core::ServiceTimeTable>& tables,
    Duration width = Duration::millis(50),
    const core::DetectorConfig& config = {});

/// Renders the full multi-server analysis (summary per server + ranking).
[[nodiscard]] std::string to_string(const SystemAnalysis& analysis);

}  // namespace tbd::app
