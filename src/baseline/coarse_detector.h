// Coarse-grained baseline: what seconds-granularity monitoring can see.
//
// The paper's motivating claim (Sections I-II) is that tools like sysstat /
// esxtop, sampling at 1-2 s, cannot detect transient bottlenecks: Figure 3
// shows ~80% average CPU while millisecond congestion episodes wreck the
// response-time tail. This module implements that baseline — threshold
// detection on sampled utilization — plus recall scoring of any detector
// against ground-truth bottleneck windows (e.g. the GC log), and the
// monitoring-overhead model the paper quotes for pushing samplers to
// sub-second intervals (6% CPU at 100 ms, 12% at 20 ms).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/detector.h"
#include "core/intervals.h"
#include "util/time.h"

namespace tbd::baseline {

/// A detector's verdict per interval of a grid.
struct DetectorOutput {
  core::IntervalSpec spec;
  std::vector<bool> flagged;
};

/// Utilization-threshold detection on sampled utilization: interval i is
/// flagged when util >= threshold. `first_sample_start` is the time sample 0
/// covers from.
[[nodiscard]] DetectorOutput detect_from_utilization(
    std::span<const double> util_series, TimePoint first_sample_start,
    Duration period, double threshold = 0.95);

/// Adapts a fine-grained detection result to the common verdict shape
/// (congested or frozen => flagged).
[[nodiscard]] DetectorOutput detect_from_fine_grained(
    const core::DetectionResult& result);

struct RecallReport {
  std::size_t truth_episodes = 0;
  std::size_t detected_episodes = 0;   // truth windows overlapping a flag
  std::size_t flagged_intervals = 0;
  std::size_t false_positive_intervals = 0;  // flagged, no truth overlap
  [[nodiscard]] double recall() const {
    return truth_episodes ? static_cast<double>(detected_episodes) /
                                static_cast<double>(truth_episodes)
                          : 1.0;
  }
  [[nodiscard]] double precision() const {
    return flagged_intervals
               ? 1.0 - static_cast<double>(false_positive_intervals) /
                           static_cast<double>(flagged_intervals)
               : 1.0;
  }
};

/// Scores a detector against ground-truth bottleneck windows. A truth
/// episode counts as detected when at least one flagged interval overlaps
/// it; a flagged interval is a false positive when it overlaps no truth
/// window (with `slack` tolerance on both sides, since congestion outlasts
/// its cause while queues drain).
[[nodiscard]] RecallReport score_detector(
    const DetectorOutput& output, std::span<const core::TimeWindow> truth,
    Duration slack = Duration::millis(500));

/// CPU overhead fraction of sampling-based monitoring at a given interval,
/// fitted to the paper's quoted points (12% @ 20 ms, 6% @ 100 ms) with a
/// power law; passive network tracing is ~0 by construction.
[[nodiscard]] double sampling_overhead_fraction(Duration sample_interval);

}  // namespace tbd::baseline
