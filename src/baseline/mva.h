// Mean Value Analysis baseline (related work, Section V).
//
// Urgaonkar et al. model an n-tier application as a closed product-form
// queueing network and size tiers with exact MVA. The paper's critique: MVA
// predicts averages well but "has difficulties dealing with wide-range
// response time variations caused by bursty workloads and transient
// bottlenecks". We implement exact single-class MVA over the topology's
// service demands so the benchmark harness can show precisely that: MVA
// tracks the simulated throughput curve (Fig 2a's shape) while being blind
// to the tail (Fig 2b/c).
#pragma once

#include <string>
#include <vector>

namespace tbd::baseline {

struct MvaStation {
  std::string name;
  /// Aggregate service demand per transaction at this station, seconds,
  /// already divided by the tier's total cores (multi-server approximation).
  double demand_s = 0.0;
};

struct MvaModel {
  std::vector<MvaStation> stations;
  /// Pure delay per transaction (network latencies), seconds.
  double delay_s = 0.0;
  /// Client think time, seconds.
  double think_s = 7.0;
};

struct MvaPoint {
  int population = 0;
  double throughput = 0.0;        // transactions per second
  double response_time_s = 0.0;   // mean residence across stations + delay
  std::vector<double> utilization;  // per station, X * demand
  std::vector<double> queue_len;    // per station
};

/// Exact MVA evaluated at population N (recursion from 1..N).
[[nodiscard]] MvaPoint solve_mva(const MvaModel& model, int population);

/// Evaluates a set of populations in one recursion sweep.
[[nodiscard]] std::vector<MvaPoint> solve_mva_sweep(
    const MvaModel& model, const std::vector<int>& populations);

}  // namespace tbd::baseline
