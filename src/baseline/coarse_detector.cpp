#include "baseline/coarse_detector.h"

#include <algorithm>
#include <cmath>

namespace tbd::baseline {

DetectorOutput detect_from_utilization(std::span<const double> util_series,
                                       TimePoint first_sample_start,
                                       Duration period, double threshold) {
  DetectorOutput out;
  out.spec.start = first_sample_start;
  out.spec.width = period;
  out.spec.count = util_series.size();
  out.flagged.reserve(util_series.size());
  for (double u : util_series) out.flagged.push_back(u >= threshold);
  return out;
}

DetectorOutput detect_from_fine_grained(const core::DetectionResult& result) {
  DetectorOutput out;
  out.spec = result.spec;
  out.flagged.reserve(result.states.size());
  for (const auto s : result.states) {
    out.flagged.push_back(s == core::IntervalState::kCongested ||
                          s == core::IntervalState::kFrozen);
  }
  return out;
}

RecallReport score_detector(const DetectorOutput& output,
                            std::span<const core::TimeWindow> truth,
                            Duration slack) {
  RecallReport report;
  report.truth_episodes = truth.size();

  auto overlaps_flag = [&](const core::TimeWindow& w) {
    for (std::size_t i = 0; i < output.flagged.size(); ++i) {
      if (!output.flagged[i]) continue;
      const TimePoint cell_start = output.spec.interval_start(i);
      const TimePoint cell_end = cell_start + output.spec.width;
      if (cell_start < w.end + slack && cell_end > w.start - slack) return true;
    }
    return false;
  };
  for (const auto& w : truth) {
    if (overlaps_flag(w)) ++report.detected_episodes;
  }

  for (std::size_t i = 0; i < output.flagged.size(); ++i) {
    if (!output.flagged[i]) continue;
    ++report.flagged_intervals;
    const TimePoint cell_start = output.spec.interval_start(i);
    const TimePoint cell_end = cell_start + output.spec.width;
    bool any = false;
    for (const auto& w : truth) {
      if (cell_start < w.end + slack && cell_end > w.start - slack) {
        any = true;
        break;
      }
    }
    if (!any) ++report.false_positive_intervals;
  }
  return report;
}

double sampling_overhead_fraction(Duration sample_interval) {
  // Power-law fit through (20 ms, 12%) and (100 ms, 6%):
  // overhead = k * T^-a with a = ln2/ln5, k chosen to hit both points.
  const double t_ms = std::max(1.0, sample_interval.millis_f());
  const double a = std::log(2.0) / std::log(5.0);
  const double k = 0.12 * std::pow(20.0, a);
  return std::min(0.5, k * std::pow(t_ms, -a));
}

}  // namespace tbd::baseline
