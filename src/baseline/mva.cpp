#include "baseline/mva.h"

#include <algorithm>
#include <cassert>

namespace tbd::baseline {

std::vector<MvaPoint> solve_mva_sweep(const MvaModel& model,
                                      const std::vector<int>& populations) {
  std::vector<MvaPoint> out;
  if (populations.empty()) return out;
  const int n_max = *std::max_element(populations.begin(), populations.end());
  const std::size_t s = model.stations.size();

  std::vector<double> queue(s, 0.0);  // Q_k(N-1) carried through recursion
  for (int n = 1; n <= n_max; ++n) {
    // R_k(N) = D_k * (1 + Q_k(N-1)) for queueing stations.
    double total_r = model.delay_s;
    std::vector<double> resid(s, 0.0);
    for (std::size_t k = 0; k < s; ++k) {
      resid[k] = model.stations[k].demand_s * (1.0 + queue[k]);
      total_r += resid[k];
    }
    const double x = n / (model.think_s + total_r);
    for (std::size_t k = 0; k < s; ++k) queue[k] = x * resid[k];

    if (std::find(populations.begin(), populations.end(), n) !=
        populations.end()) {
      MvaPoint p;
      p.population = n;
      p.throughput = x;
      p.response_time_s = total_r;
      p.queue_len = queue;
      p.utilization.reserve(s);
      for (std::size_t k = 0; k < s; ++k) {
        p.utilization.push_back(x * model.stations[k].demand_s);
      }
      out.push_back(p);
    }
  }
  return out;
}

MvaPoint solve_mva(const MvaModel& model, int population) {
  assert(population >= 1);
  return solve_mva_sweep(model, {population}).front();
}

}  // namespace tbd::baseline
