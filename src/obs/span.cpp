#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <fstream>

namespace tbd::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t ring_capacity) {
  const std::scoped_lock lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed)) return;
  ring_capacity_ = std::max<std::size_t>(ring_capacity, 8);
  epoch_ns_ = steady_ns();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>((steady_ns() - epoch_ns_) / 1000);
}

Tracer::ThreadRing& Tracer::local_ring() {
  // One ring per (thread, tracer-singleton); rings are never destroyed while
  // the process lives, so the cached pointer stays valid even past thread
  // exit of *other* threads.
  thread_local ThreadRing* cached = nullptr;
  if (cached) return *cached;
  const std::scoped_lock lock(mutex_);
  auto ring = std::make_unique<ThreadRing>();
  ring->slots.resize(ring_capacity_);
  ring->tid = static_cast<std::uint32_t>(rings_.size());
  cached = ring.get();
  rings_.push_back(std::move(ring));
  return *cached;
}

std::vector<SpanRecord> Tracer::collect() const {
  const std::scoped_lock lock(mutex_);
  std::vector<SpanRecord> out;
  for (const auto& ring : rings_) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t kept = std::min(n, cap);
    for (std::uint64_t i = n - kept; i < n; ++i) {
      out.push_back(ring->slots[i % cap]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    if (n > cap) dropped += n - cap;
  }
  return dropped;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  for (const auto& ring : rings_) {
    ring->count.store(0, std::memory_order_release);
  }
}

std::string Tracer::chrome_trace_json() const {
  const auto spans = collect();
  std::uint32_t max_tid = 0;
  for (const auto& s : spans) max_tid = std::max(max_tid, s.tid);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  // Thread-name metadata rows so Perfetto labels tracks usefully.
  for (std::uint32_t t = 0; !spans.empty() && t <= max_tid; ++t) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(t) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"tbd-thread-" +
           std::to_string(t) + "\"}}";
  }
  for (const auto& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(s.tid) +
           ", \"name\": \"" + std::string{s.name} +
           "\", \"ts\": " + std::to_string(s.start_us) +
           ", \"dur\": " + std::to_string(s.dur_us) +
           ", \"args\": {\"depth\": " + std::to_string(s.depth) + "}}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

std::map<std::string, SpanRollup> Tracer::rollup(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanRollup> by_name;
  for (const auto& s : spans) {
    auto& r = by_name[s.name];
    ++r.count;
    r.total_us += s.dur_us;
    r.max_us = std::max(r.max_us, s.dur_us);
  }
  return by_name;
}

SpanScope::SpanScope(const char* name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  ring_ = &tracer.local_ring();
  name_ = name;
  depth_ = ring_->depth++;
  start_us_ = tracer.now_us();
}

SpanScope::~SpanScope() {
  if (!ring_) return;
  --ring_->depth;
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;  // disabled mid-span: drop it
  const std::uint64_t end_us = tracer.now_us();
  ring_->push(SpanRecord{name_, start_us_, end_us - start_us_, ring_->tid,
                         depth_});
}

}  // namespace tbd::obs
