#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "obs/manifest.h"

namespace tbd::obs {

TimelineBuilder::TrackId TimelineBuilder::add_track(std::string name) {
  Track track;
  track.name = std::move(name);
  tracks_.push_back(std::move(track));
  return static_cast<TrackId>(tracks_.size() - 1);
}

TimelineBuilder::TrackId TimelineBuilder::add_overlay_track(std::string name) {
  Track track;
  track.name = std::move(name);
  track.overlay = true;
  tracks_.push_back(std::move(track));
  return static_cast<TrackId>(tracks_.size() - 1);
}

TimelineBuilder::SliceRef TimelineBuilder::add_slice(TrackId track,
                                                     std::int64_t start_us,
                                                     std::int64_t end_us,
                                                     std::string name,
                                                     std::string category,
                                                     Args args) {
  Track& t = tracks_[track];
  t.slices.push_back(Slice{.start = start_us,
                           .end = std::max(start_us, end_us),
                           .name = std::move(name),
                           .category = std::move(category),
                           .args = std::move(args)});
  return SliceRef{track, static_cast<std::uint32_t>(t.slices.size() - 1)};
}

void TimelineBuilder::add_overlay(TrackId track, std::int64_t start_us,
                                  std::int64_t end_us, std::string name,
                                  std::string color, Args args) {
  tracks_[track].overlays.push_back(Overlay{.start = start_us,
                                            .end = std::max(start_us, end_us),
                                            .name = std::move(name),
                                            .color = std::move(color),
                                            .args = std::move(args)});
}

void TimelineBuilder::add_flow(
    std::uint64_t id, std::string name,
    std::vector<std::pair<SliceRef, std::int64_t>> points) {
  flows_.push_back(Flow{id, std::move(name), std::move(points)});
}

std::string TimelineBuilder::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string TimelineBuilder::num(std::int64_t v) { return std::to_string(v); }

std::string TimelineBuilder::str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

namespace {

std::string render_args(const TimelineBuilder::Args& args) {
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(args[i].first) + "\":" + args[i].second;
  }
  out += "}";
  return out;
}

struct TimedEvent {
  std::int64_t ts = 0;
  std::string json;
};

}  // namespace

std::string TimelineBuilder::to_json() const {
  // ---- lane assignment per slice track --------------------------------------
  // Slices in (start asc, end desc) order go to the first lane where they are
  // either past everything open or nest fully inside the open slice, so each
  // lane's B/E stream is properly nested and concurrency shows up as depth.
  std::vector<std::vector<std::uint32_t>> lane_of(tracks_.size());
  std::vector<std::uint32_t> lane_count(tracks_.size(), 0);
  std::vector<std::vector<std::uint32_t>> order(tracks_.size());
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    const Track& t = tracks_[ti];
    if (t.overlay) {
      lane_count[ti] = 1;
      continue;
    }
    auto& ord = order[ti];
    ord.resize(t.slices.size());
    std::iota(ord.begin(), ord.end(), 0U);
    std::sort(ord.begin(), ord.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (t.slices[a].start != t.slices[b].start)
        return t.slices[a].start < t.slices[b].start;
      if (t.slices[a].end != t.slices[b].end)
        return t.slices[a].end > t.slices[b].end;
      return a < b;
    });
    lane_of[ti].assign(t.slices.size(), 0);
    std::vector<std::vector<std::int64_t>> open;  // per lane: open end stack
    for (const std::uint32_t si : ord) {
      const Slice& s = t.slices[si];
      std::size_t lane = open.size();
      for (std::size_t L = 0; L < open.size(); ++L) {
        auto& stack = open[L];
        while (!stack.empty() && stack.back() <= s.start) stack.pop_back();
        if (stack.empty() || s.end <= stack.back()) {
          lane = L;
          break;
        }
      }
      if (lane == open.size()) open.emplace_back();
      open[lane].push_back(s.end);
      lane_of[ti][si] = static_cast<std::uint32_t>(lane);
    }
    lane_count[ti] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(open.size()));
  }

  // ---- tid layout -----------------------------------------------------------
  std::vector<std::uint32_t> first_tid(tracks_.size(), 0);
  std::uint32_t next_tid = 1;
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    first_tid[ti] = next_tid;
    next_tid += lane_count[ti];
  }

  // ---- metadata -------------------------------------------------------------
  std::vector<std::string> meta;
  meta.push_back(R"({"name":"process_name","ph":"M","pid":1,"args":{"name":)" +
                 str(process_name_) + "}}");
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    for (std::uint32_t L = 0; L < lane_count[ti]; ++L) {
      const std::uint32_t tid = first_tid[ti] + L;
      std::string name = tracks_[ti].name;
      if (L > 0) name += " \xc2\xb7" + std::to_string(L + 1);
      meta.push_back(R"({"name":"thread_name","ph":"M","pid":1,"tid":)" +
                     std::to_string(tid) + R"(,"args":{"name":)" + str(name) +
                     "}}");
      meta.push_back(R"({"name":"thread_sort_index","ph":"M","pid":1,"tid":)" +
                     std::to_string(tid) + R"(,"args":{"sort_index":)" +
                     std::to_string(tid) + "}}");
    }
  }

  // ---- timed events ---------------------------------------------------------
  std::vector<TimedEvent> events;
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    const Track& t = tracks_[ti];
    if (t.overlay) {
      const std::uint32_t tid = first_tid[ti];
      auto ord_ov = std::vector<std::uint32_t>(t.overlays.size());
      std::iota(ord_ov.begin(), ord_ov.end(), 0U);
      std::sort(ord_ov.begin(), ord_ov.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (t.overlays[a].start != t.overlays[b].start)
                    return t.overlays[a].start < t.overlays[b].start;
                  return a < b;
                });
      for (const std::uint32_t oi : ord_ov) {
        const Overlay& o = t.overlays[oi];
        std::string e = "{\"name\":" + str(o.name) +
                        ",\"cat\":\"episode\",\"ph\":\"X\",\"ts\":" +
                        num(o.start) + ",\"dur\":" + num(o.end - o.start) +
                        ",\"pid\":1,\"tid\":" + std::to_string(tid);
        if (!o.color.empty()) e += ",\"cname\":" + str(o.color);
        e += ",\"args\":" + render_args(o.args) + "}";
        events.push_back({o.start, std::move(e)});
      }
      continue;
    }
    // Per lane, walk slices in sorted order and emit a nested B/E stream.
    for (std::uint32_t L = 0; L < lane_count[ti]; ++L) {
      const std::uint32_t tid = first_tid[ti] + L;
      const std::string tid_s = std::to_string(tid);
      std::vector<std::int64_t> open;  // ends of currently open slices
      for (const std::uint32_t si : order[ti]) {
        if (lane_of[ti][si] != L) continue;
        const Slice& s = t.slices[si];
        while (!open.empty() && open.back() <= s.start) {
          events.push_back({open.back(), "{\"ph\":\"E\",\"ts\":" +
                                             num(open.back()) +
                                             ",\"pid\":1,\"tid\":" + tid_s +
                                             "}"});
          open.pop_back();
        }
        events.push_back(
            {s.start, "{\"name\":" + str(s.name) + ",\"cat\":" +
                          str(s.category) + ",\"ph\":\"B\",\"ts\":" +
                          num(s.start) + ",\"pid\":1,\"tid\":" + tid_s +
                          ",\"args\":" + render_args(s.args) + "}"});
        open.push_back(s.end);
      }
      while (!open.empty()) {
        events.push_back({open.back(), "{\"ph\":\"E\",\"ts\":" +
                                           num(open.back()) +
                                           ",\"pid\":1,\"tid\":" + tid_s +
                                           "}"});
        open.pop_back();
      }
    }
  }
  for (const Flow& f : flows_) {
    if (f.points.size() < 2) continue;
    for (std::size_t i = 0; i < f.points.size(); ++i) {
      const auto& [ref, ts] = f.points[i];
      const std::uint32_t tid =
          first_tid[ref.track] +
          (tracks_[ref.track].overlay ? 0 : lane_of[ref.track][ref.index]);
      const char* ph = i == 0 ? "s" : (i + 1 == f.points.size() ? "f" : "t");
      std::string e = "{\"name\":" + str(f.name) +
                      ",\"cat\":\"flow\",\"ph\":\"" + ph +
                      "\",\"id\":" + std::to_string(f.id) + ",\"ts\":" +
                      num(ts) + ",\"pid\":1,\"tid\":" + std::to_string(tid);
      if (*ph == 'f') e += ",\"bp\":\"e\"";
      e += "}";
      events.push_back({ts, std::move(e)});
    }
  }
  // Stable by ts: within one timestamp, generation order already places E
  // before the next B on a lane and slices before the flows that bind to
  // them.
  std::stable_sort(events.begin(), events.end(),
                   [](const TimedEvent& a, const TimedEvent& b) {
                     return a.ts < b.ts;
                   });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& m : meta) {
    if (!first) out += ",\n";
    first = false;
    out += m;
  }
  for (const TimedEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += e.json;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TimelineBuilder::write(const std::string& path) const {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace tbd::obs
