// Introspection surface: the /statusz + /threadz + /profilez endpoints.
//
// /statusz — one JSON document answering "what is this process and is it
//   healthy": tool identity, git describe, pid, uptime, process stats
//   (RSS/CPU/fds), profiler state, plus any number of caller-registered
//   status sources (tbd_watch registers "streams" — the per-stream
//   freshness table from StreamingTelemetry::status_json()).
// /threadz — the shared pool's execution slots (heartbeat state, stall
//   flags, per-slot task counts) plus the watchdog's stall total and the
//   slow-task leaderboard.
// /profilez — the sampling profiler's latest JSON document (live when the
//   profiler is running: drains the rings on request).
//
// The obs layer depends only on util, so this module can read ThreadPool
// and the Profiler but knows nothing about streams — that context arrives
// through add_status_source. Responses are rebuilt per request; these are
// debugging endpoints, not hot paths.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace tbd::obs {

class ExpositionServer;

/// Version stamped into /statusz and /threadz; bump on field changes.
inline constexpr int kIntrospectionSchemaVersion = 1;

class Introspection {
 public:
  struct Options {
    /// Identity reported by /statusz ("tbd_watch", "tbd_serve", ...).
    std::string tool;
    /// Extra fixed key/value pairs for /statusz (config flags, file names).
    std::vector<std::pair<std::string, std::string>> info;
  };

  explicit Introspection(Options options);

  Introspection(const Introspection&) = delete;
  Introspection& operator=(const Introspection&) = delete;

  /// Registers a named /statusz section. `source` must return a valid JSON
  /// value (object, array, or scalar) and is invoked on every request from
  /// the serving thread — it must be thread-safe against the process's own
  /// work. Registration order is emission order.
  void add_status_source(std::string key, std::function<std::string()> source);

  /// Registers /statusz, /threadz, and /profilez on `server`. Call before
  /// server.start(); `this` must outlive the server.
  void wire(ExpositionServer& server);

  /// The /statusz document (also usable without a server, e.g. in tests).
  [[nodiscard]] std::string statusz_json() const;
  /// The /threadz document.
  [[nodiscard]] std::string threadz_json() const;

 private:
  Options options_;
  std::vector<std::pair<std::string, std::function<std::string()>>> sources_;
};

}  // namespace tbd::obs
