// In-process sampling profiler: the pipeline watching its own hot paths.
//
// A timer (CPU mode: ITIMER_PROF, so samples land on whichever thread is
// burning cycles) or a dedicated sampler thread (wall mode: every thread in
// /proc/self/task gets a signal each tick, so blocked threads are sampled
// too) delivers SIGPROF; the async-signal-safe handler captures a raw
// backtrace into the receiving thread's lock-free SPSC sample ring. A
// low-frequency collector thread drains the rings into a per-stack
// aggregate, so memory stays O(unique stacks) however long the profile
// runs. Symbolization (dladdr + demangle) happens only at render time —
// never on the sampled thread.
//
// Output is flamegraph-ready folded stacks ("thread;frame;...;leaf count",
// one line per unique stack, sorted) and a schema-versioned JSON document
// (the /profilez endpoint). At the default 97 Hz (prime, so sampling never
// locks step with periodic work) the cost on a saturated analysis thread is
// well under 1% — gated by bench_streaming's profiler arm.
//
// Threading contract: start()/stop()/collect()/folded()/json() may be
// called from any thread, serialized internally; the handler itself never
// takes a lock. Rings are claimed lazily by the first sample a thread
// receives and are never freed while the process lives, so a straggler
// signal after stop() can never touch freed memory.
//
// Under -DTBD_OBS=OFF the whole subsystem compiles out: Profiler becomes an
// inline stub whose start() fails with "compiled out", and no signal
// handler, timer, or thread ever exists.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tbd::obs {

/// Version stamped into the JSON profile document; bump on field changes.
inline constexpr int kProfileSchemaVersion = 1;

struct ProfilerOptions {
  enum class Mode {
    kCpu,   ///< ITIMER_PROF: samples threads in proportion to CPU burned.
    kWall,  ///< sampler thread signals every live thread each tick.
  };
  Mode mode = Mode::kCpu;
  /// Sampling frequency. Prime by default so the sampler never phase-locks
  /// with 10ms/50ms periodic work.
  int hz = 97;
  /// Per-thread sample rings pre-allocated at first start(); threads beyond
  /// this count have their samples dropped (and counted).
  std::size_t max_threads = 32;
  /// Samples buffered per ring between collector drains (the collector
  /// wakes several times a second; 512 covers seconds of backlog at 97 Hz).
  std::size_t ring_capacity = 512;
};

[[nodiscard]] const char* to_string(ProfilerOptions::Mode mode);

/// One unique call stack with its sample count. Frames are symbolized,
/// root-first, and never contain ';' or a leading/trailing space (fold
/// format safety); the thread name is carried separately.
struct ProfileStack {
  std::string thread;
  std::vector<std::string> frames;
  std::uint64_t count = 0;
};

/// Per-thread sample totals (cheap: no symbolization).
struct ProfileThreadCount {
  std::string thread;
  std::uint64_t samples = 0;
};

/// Folds stacks into collapsed flamegraph lines: "thread;root;...;leaf N",
/// merged across duplicate stacks, sorted lexicographically. Pure — the
/// deterministic-structure contract is golden-tested on synthetic input.
[[nodiscard]] std::string fold_stacks(const std::vector<ProfileStack>& stacks);

#ifdef TBD_OBS_DISABLED

/// Stub: API-compatible, never starts, so tools carry --profile-out
/// unconditionally and a TBD_OBS=OFF build degrades to a warning.
class Profiler {
 public:
  using Options = ProfilerOptions;

  [[nodiscard]] static Profiler& global() {
    static Profiler p;
    return p;
  }
  bool start(const Options& = Options()) { return false; }
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] const std::string& error() const {
    static const std::string e = "profiler compiled out (TBD_OBS=OFF)";
    return e;
  }
  [[nodiscard]] Options options() const { return Options(); }
  [[nodiscard]] std::uint64_t samples() { return 0; }
  [[nodiscard]] std::uint64_t dropped() { return 0; }
  [[nodiscard]] std::uint64_t duration_us() const { return 0; }
  [[nodiscard]] std::vector<ProfileStack> collect() { return {}; }
  [[nodiscard]] std::vector<ProfileThreadCount> thread_samples() { return {}; }
  [[nodiscard]] std::string folded() { return std::string(); }
  [[nodiscard]] std::string json();
};

#else

class Profiler {
 public:
  using Options = ProfilerOptions;

  /// Process-wide instance: SIGPROF has one handler per process, so there
  /// is exactly one profiler.
  [[nodiscard]] static Profiler& global();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms the timer/sampler and begins collecting. Returns false (and sets
  /// error()) if already running or the timer can't be armed. Ring
  /// geometry (max_threads, ring_capacity) is fixed by the first start()
  /// of the process; later starts reuse the same rings.
  [[nodiscard]] bool start(const Options& options = Options());
  /// Disarms, drains every ring, and joins the helper threads. Aggregated
  /// samples are kept for collect()/folded()/json() until the next start().
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] Options options() const;

  /// Aggregated sample count so far (drains the rings first; callable
  /// while running — the /profilez endpoint does).
  [[nodiscard]] std::uint64_t samples();
  /// Samples lost to ring overflow or to more than max_threads threads.
  [[nodiscard]] std::uint64_t dropped();
  /// Wall time spent profiling: up to now while running, else the length
  /// of the last session.
  [[nodiscard]] std::uint64_t duration_us() const;

  /// Symbolized unique stacks, aggregated since the last start().
  [[nodiscard]] std::vector<ProfileStack> collect();
  /// Per-thread totals without symbolization (the /threadz table).
  [[nodiscard]] std::vector<ProfileThreadCount> thread_samples();
  /// fold_stacks(collect()).
  [[nodiscard]] std::string folded();
  /// JSON profile document (schema kProfileSchemaVersion): meta + per-thread
  /// totals + symbolized stacks. Serves /profilez.
  [[nodiscard]] std::string json();

  /// Internal state, public only so the extern "C" signal entry point can
  /// reach it; not part of the supported API.
  struct Impl;

 private:
  Profiler() = default;

  Impl* impl_ = nullptr;  // allocated at first start(), never freed
  std::string error_;
};

#endif  // TBD_OBS_DISABLED

}  // namespace tbd::obs
