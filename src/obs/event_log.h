// Live detection event log: a schema-versioned, bounded NDJSON sink for the
// streaming detector's state transitions.
//
// The batch pipeline reports after the run; a monitor must *journal* as it
// goes. EventLog appends one JSON object per line for each of three event
// kinds — interval_sealed, episode_open, episode_close — stamped with a
// monotonic sequence number, and optionally mirrors the tail into two
// bounded in-memory rings: the raw recent-event ring (debugging, tests) and
// the closed-episode ring that backs the exposition server's /episodes
// endpoint. Memory is bounded regardless of stream length; the NDJSON file
// just streams.
//
// Determinism contract: all numeric fields are rendered with fixed formats
// (%.17g for doubles, which round-trips bit-exactly), and callers emit
// events in replay order, so the byte stream is identical at any
// TBD_THREADS — scripts/tier1.sh diffs two runs and a checked-in golden.
// Writes are mutex-guarded so a scrape thread can read the rings while the
// replay thread appends.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tbd::obs {

class Registry;
class Histogram;
class Counter;

/// Version stamped into the leading meta record; bump on any field change.
inline constexpr int kEventLogSchemaVersion = 1;

/// Namespace-scope so it can be a default argument (a nested struct's
/// member initializers are unusable before the enclosing class completes).
struct EventLogOptions {
  /// Recent-event lines kept in memory (0 disables the ring).
  std::size_t ring_capacity = 1024;
  /// Closed episodes kept for episodes_json() (the /episodes ring).
  std::size_t episode_ring_capacity = 64;
  /// Flush the stream after every event ("flush-on-seal"): a crash loses
  /// at most the event being written, and a tail -f sees seals live.
  bool flush_per_event = true;
  /// When set, the journal reports on itself: per-event write+flush latency
  /// lands in the tbd_event_log_flush_us histogram and bytes written in the
  /// tbd_event_log_bytes_total counter. Null keeps the historic
  /// clock-free write path (and the byte-identical goldens cost nothing).
  Registry* registry = nullptr;
};

class EventLog {
 public:
  using Options = EventLogOptions;

  /// `out` may be null: events then only populate the in-memory rings
  /// (tbd_watch does this when --events-out is not given but --listen is).
  /// The meta record — {"type":"meta","seq":0,"schema_version":N, ...} — is
  /// written immediately; `meta` pairs are appended to it as string fields.
  explicit EventLog(
      std::ostream* out, Options options = Options(),
      const std::vector<std::pair<std::string, std::string>>& meta = {});

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Each emitter returns the event's sequence number (meta is seq 0;
  /// events count from 1). `state` is the sealed interval's classification
  /// ("idle" | "normal" | "congested" | "frozen"); `t_us` is the interval's
  /// (or episode's) absolute start on the trace clock.
  std::uint64_t interval_sealed(std::string_view stream, std::uint64_t index,
                                std::int64_t t_us, double load, double tput,
                                std::string_view state);
  std::uint64_t episode_open(std::string_view stream, std::uint64_t index,
                             std::int64_t t_us);
  std::uint64_t episode_close(std::string_view stream, std::int64_t start_us,
                              std::int64_t duration_us, double peak_load,
                              bool contains_freeze);

  /// Events emitted so far (excluding the meta record).
  [[nodiscard]] std::uint64_t events_emitted() const;
  /// Copy of the bounded recent-event ring, oldest first (NDJSON lines
  /// without the trailing newline).
  [[nodiscard]] std::vector<std::string> recent() const;
  /// JSON document for the /episodes endpoint:
  /// {"schema_version":N,"episodes":[{...last K closed episodes...}]}.
  [[nodiscard]] std::string episodes_json() const;
  void flush();

 private:
  /// Stamps the next seq into `body` (after its "type" field) and appends
  /// the line under the lock.
  std::uint64_t emit(const std::string& body, const std::string* episode_obj);
  /// Writes one finished line: NDJSON stream, recent ring, episode ring.
  /// Takes the line by value and moves it into the ring — the emit path
  /// runs per sealed interval and must not copy. Caller holds mutex_.
  void write_line(std::string line, const std::string* episode_obj);

  mutable std::mutex mutex_;
  std::ostream* out_;
  Options options_;
  Histogram* flush_us_ = nullptr;     // set iff options_.registry
  Counter* bytes_total_ = nullptr;    // set iff options_.registry
  std::uint64_t seq_ = 0;
  std::deque<std::string> ring_;
  std::deque<std::string> episode_ring_;
};

}  // namespace tbd::obs
