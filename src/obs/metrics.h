// Self-instrumentation metrics: lock-cheap counters, gauges, and fixed-bucket
// histograms for the TBD stack itself (simulator, thread pool, analysis
// pipeline) — the same "coarse monitoring hides transient behavior" argument
// the paper makes about n-tier systems applies to our own runner.
//
// Design:
//  * Counter / Histogram writes go to striped cache-line-padded shards; each
//    thread picks a shard once (thread-local index) and then increments with
//    a relaxed atomic add — no locks, no shared cache line in the common
//    case. Shards are summed only on snapshot/export.
//  * Gauge is a single atomic double (set / add / update_max).
//  * Registry maps names to metric *families*; a family holds one series
//    per label set (`{stream="server0"}`), so a single registry can carry
//    thousands of monitored streams. The name lookup takes a mutex, so hot
//    paths resolve the reference once and keep it. Exported as a JSON
//    object (embedded in run manifests) and as a one-shot Prometheus-style
//    text dump with one TYPE comment per family and one line per series.
//
// Naming convention (see docs/observability.md): tbd_<area>_<what>[_<unit>],
// counters end in _total, e.g. tbd_engine_events_total,
// tbd_pool_queue_wait_us_total. Names are sanitized to the Prometheus
// grammar on first lookup and label values are escaped on exposition, so a
// hostile stream name cannot corrupt the scrape text.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tbd::obs {

namespace detail {
/// Stripe count for sharded writes; power of two, a few times typical
/// hardware concurrency is plenty because collisions only cost a shared
/// cache line, never correctness.
inline constexpr std::size_t kStripes = 16;

/// Dense per-thread stripe slot, assigned on first use.
[[nodiscard]] std::size_t stripe_index();

/// fetch_add for atomic<double> via CAS (portable; fetch_add on double is
/// C++20 but not lock-free everywhere).
void atomic_add(std::atomic<double>& target, double delta);

/// %.17g rendering — round-trips doubles bit-exactly, shared by the JSON /
/// Prometheus exports and the NDJSON event log.
[[nodiscard]] std::string format_number(double v);

/// Same rendering appended in place — the event log's per-seal path avoids
/// the temporary string.
void append_number(std::string& out, double v);

/// JSON string-content escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);
}  // namespace detail

/// One metric's label set: (name, value) pairs. Canonicalized on registry
/// lookup — label names sanitized, pairs sorted by name — so insertion order
/// never creates duplicate series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Sanitizes a metric name to the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid character becomes '_', a leading
/// digit gains a '_' prefix, and an empty name becomes "_". Distinct raw
/// names can collapse onto one sanitized family; callers wanting separate
/// series must differ in valid characters.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Same, for label names ([a-zA-Z_][a-zA-Z0-9_]*; no ':').
[[nodiscard]] std::string sanitize_label_name(std::string_view name);

/// Escapes a label value for text exposition: '\' -> "\\", '"' -> "\"",
/// newline -> "\n" (the three escapes the Prometheus text format defines).
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Canonical rendered label block: "" for no labels, else
/// {name="escaped value",...} with pairs sorted by sanitized name.
[[nodiscard]] std::string render_labels(const Labels& labels);

/// Monotonic event count. add() is wait-free (relaxed fetch_add on a
/// thread-striped shard); value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  [[nodiscard]] std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kStripes> cells_{};
};

/// Last-write-wins scalar (plus a monotonic-max update for high-water marks).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  /// Raises the gauge to `v` if `v` is larger (high-water mark semantics).
  void update_max(double v);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bucket, Prometheus `le` semantics); one extra overflow
/// bucket catches v beyond the last bound. Writes are striped like Counter.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, as configured
    std::vector<std::uint64_t> counts; // per-bucket (bounds.size() + 1, last = overflow)
    std::uint64_t count = 0;           // total observations
    double sum = 0.0;                  // sum of observed values
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, detail::kStripes> shards_;
};

/// Name -> metric registry. Lookup is mutex-guarded (cache the reference on
/// hot paths); returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry used by the built-in instrumentation.
  [[nodiscard]] static Registry& global();

  /// The unlabeled series of the family `name`.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates the histogram on first use; later calls with the same name
  /// return the existing instance (bounds are ignored then).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Labeled series: one instance per canonical label set within the
  /// family. `counter("x", {{"stream","a"}})` and `counter("x")` are
  /// distinct series of the same family and share one TYPE line on
  /// exposition.
  Counter& counter(const std::string& name, const Labels& labels);
  Gauge& gauge(const std::string& name, const Labels& labels);
  Histogram& histogram(const std::string& name, const Labels& labels,
                       std::vector<double> bounds);

  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Labeled series appear under "name{label=\"value\",...}" keys.
  [[nodiscard]] std::string to_json() const;
  /// One-shot Prometheus text exposition (TYPE comments + cumulative
  /// histogram buckets; label values escaped per the text format).
  [[nodiscard]] std::string to_prometheus() const;

  /// Zeroes every metric's value. References stay valid (metrics are never
  /// removed); meant for tests and for between-window resets.
  void reset();

 private:
  /// name -> (rendered label block -> series); "" is the unlabeled series.
  template <typename M>
  using FamilyMap = std::map<std::string, std::map<std::string, std::unique_ptr<M>>>;

  mutable std::mutex mutex_;
  FamilyMap<Counter> counters_;
  FamilyMap<Gauge> gauges_;
  FamilyMap<Histogram> histograms_;
};

/// Quantile estimate from bucketed counts: `q` in [0, 1] (clamped), linearly
/// interpolated within the bucket containing the q-th observation, with the
/// first bucket anchored at 0. Observations in the overflow bucket resolve
/// to the last finite bound (Prometheus histogram_quantile convention).
/// Returns 0 for an empty snapshot.
[[nodiscard]] double snapshot_quantile(const Histogram::Snapshot& snap,
                                       double q);

}  // namespace tbd::obs
