// Self-instrumentation metrics: lock-cheap counters, gauges, and fixed-bucket
// histograms for the TBD stack itself (simulator, thread pool, analysis
// pipeline) — the same "coarse monitoring hides transient behavior" argument
// the paper makes about n-tier systems applies to our own runner.
//
// Design:
//  * Counter / Histogram writes go to striped cache-line-padded shards; each
//    thread picks a shard once (thread-local index) and then increments with
//    a relaxed atomic add — no locks, no shared cache line in the common
//    case. Shards are summed only on snapshot/export.
//  * Gauge is a single atomic double (set / add / update_max).
//  * Registry maps names to metrics; the name lookup takes a mutex, so hot
//    paths resolve the reference once and keep it. Exported as a JSON object
//    (embedded in run manifests) and as a one-shot Prometheus-style text
//    dump.
//
// Naming convention (see docs/observability.md): tbd_<area>_<what>[_<unit>],
// counters end in _total, e.g. tbd_engine_events_total,
// tbd_pool_queue_wait_us_total.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tbd::obs {

namespace detail {
/// Stripe count for sharded writes; power of two, a few times typical
/// hardware concurrency is plenty because collisions only cost a shared
/// cache line, never correctness.
inline constexpr std::size_t kStripes = 16;

/// Dense per-thread stripe slot, assigned on first use.
[[nodiscard]] std::size_t stripe_index();

/// fetch_add for atomic<double> via CAS (portable; fetch_add on double is
/// C++20 but not lock-free everywhere).
void atomic_add(std::atomic<double>& target, double delta);
}  // namespace detail

/// Monotonic event count. add() is wait-free (relaxed fetch_add on a
/// thread-striped shard); value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  [[nodiscard]] std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kStripes> cells_{};
};

/// Last-write-wins scalar (plus a monotonic-max update for high-water marks).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  /// Raises the gauge to `v` if `v` is larger (high-water mark semantics).
  void update_max(double v);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bucket, Prometheus `le` semantics); one extra overflow
/// bucket catches v beyond the last bound. Writes are striped like Counter.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, as configured
    std::vector<std::uint64_t> counts; // per-bucket (bounds.size() + 1, last = overflow)
    std::uint64_t count = 0;           // total observations
    double sum = 0.0;                  // sum of observed values
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, detail::kStripes> shards_;
};

/// Name -> metric registry. Lookup is mutex-guarded (cache the reference on
/// hot paths); returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry used by the built-in instrumentation.
  [[nodiscard]] static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates the histogram on first use; later calls with the same name
  /// return the existing instance (bounds are ignored then).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
  /// One-shot Prometheus text exposition (TYPE comments + cumulative
  /// histogram buckets).
  [[nodiscard]] std::string to_prometheus() const;

  /// Zeroes every metric's value. References stay valid (metrics are never
  /// removed); meant for tests and for between-window resets.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Quantile estimate from bucketed counts: `q` in [0, 1] (clamped), linearly
/// interpolated within the bucket containing the q-th observation, with the
/// first bucket anchored at 0. Observations in the overflow bucket resolve
/// to the last finite bound (Prometheus histogram_quantile convention).
/// Returns 0 for an empty snapshot.
[[nodiscard]] double snapshot_quantile(const Histogram::Snapshot& snap,
                                       double q);

}  // namespace tbd::obs
