#include "obs/profiler.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"

namespace tbd::obs {

namespace {

// Fold-format safety: frames are joined with ';' and the count is split off
// the last ' ', so those separators cannot appear inside a frame.
std::string sanitize_frame(std::string name) {
  if (name.empty()) return "?";
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ',';
    if (c == ' ') c = ' ';  // spaces are legal; keep them
  }
  while (!name.empty() && name.front() == ' ') name.erase(name.begin());
  while (!name.empty() && name.back() == ' ') name.pop_back();
  return name.empty() ? "?" : name;
}

}  // namespace

const char* to_string(ProfilerOptions::Mode mode) {
  return mode == ProfilerOptions::Mode::kCpu ? "cpu" : "wall";
}

std::string fold_stacks(const std::vector<ProfileStack>& stacks) {
  // Merge duplicate stacks (the same thread name can own two rings after a
  // thread exits and a new one claims a fresh ring), then emit sorted.
  std::map<std::string, std::uint64_t> folded;
  for (const auto& stack : stacks) {
    std::string line = sanitize_frame(stack.thread);
    for (const auto& frame : stack.frames) {
      line += ';';
      line += sanitize_frame(frame);
    }
    folded[line] += stack.count;
  }
  std::string out;
  for (const auto& [line, count] : folded) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace tbd::obs

#ifdef TBD_OBS_DISABLED

namespace tbd::obs {

std::string Profiler::json() {
  return "{\"schema_version\":" + std::to_string(kProfileSchemaVersion) +
         ",\"status\":\"disabled\",\"running\":false,\"samples\":0}";
}

}  // namespace tbd::obs

#else  // TBD_OBS_DISABLED

#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace tbd::obs {

namespace {

/// Hard cap on captured stack depth; deeper stacks are truncated at the
/// leaf end (the roots survive, which is what flamegraphs aggregate on).
constexpr int kMaxFrames = 48;

struct Sample {
  std::uint16_t nframes = 0;
  void* frames[kMaxFrames];
};

/// Single-producer (the sampled thread, from its signal handler) /
/// single-consumer (the collector) bounded ring. The producer drops when
/// full — a profiler must shed load, never block a sampled thread.
struct Ring {
  std::vector<Sample> slots;
  std::atomic<std::uint64_t> head{0};  // next slot the producer writes
  std::atomic<std::uint64_t> tail{0};  // next slot the consumer reads
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint32_t> tid{0};  // kernel tid, stored at claim
  std::string name;                   // resolved lazily by the collector
};

std::uint32_t current_tid() {
  return static_cast<std::uint32_t>(::syscall(SYS_gettid));
}

/// /proc comm name for a thread of this process ("tid<N>" fallback).
std::string thread_comm(std::uint32_t tid) {
  char path[64];
  std::snprintf(path, sizeof path, "/proc/self/task/%u/comm", tid);
  std::string name;
  if (std::FILE* f = std::fopen(path, "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, f) != nullptr) {
      name = buf;
      while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
        name.pop_back();
      }
    }
    std::fclose(f);
  }
  return name.empty() ? "tid" + std::to_string(tid) : name;
}

}  // namespace

struct Profiler::Impl {
  Options options;
  std::atomic<bool> active{false};

  // Rings are pre-allocated at first start() and never freed: a straggler
  // SIGPROF delivered after stop() finds quiesced but valid memory. A
  // thread claims a ring with its first sample and keeps it for life.
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<std::size_t> claims{0};
  std::atomic<std::uint64_t> unassigned_drops{0};

  // Collector state: per-ring aggregation of raw stacks, symbolized only
  // on render. Guarded by agg_mutex (collector thread + readers).
  std::mutex agg_mutex;
  std::vector<std::map<std::vector<void*>, std::uint64_t>> agg;
  std::vector<std::uint64_t> agg_samples;  // per ring
  std::uint64_t total_samples = 0;

  std::mutex state_mutex;  // serializes start()/stop()
  std::thread collector;
  std::thread wall_sampler;
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
  bool shutdown = false;

  struct sigaction previous_action {};
  std::chrono::steady_clock::time_point started_at{};
  std::atomic<std::uint64_t> session_us{0};  // frozen at stop()
  std::uint32_t collector_tid = 0;
  std::uint32_t sampler_tid = 0;

  void handle_signal();
  void collector_loop();
  void wall_loop();
  void drain_locked();
  std::uint64_t ring_dropped() const;
};

namespace {

std::atomic<Profiler::Impl*> g_impl{nullptr};
thread_local Ring* tls_ring = nullptr;

}  // namespace

// extern "C" with external linkage so dladdr resolves the exact name and
// render-time frame stripping can identify (and drop) the handler frames.
extern "C" void tbd_profiler_signal_handler(int, siginfo_t*, void*) {
  const int saved_errno = errno;
  if (Profiler::Impl* impl = g_impl.load(std::memory_order_acquire)) {
    impl->handle_signal();
  }
  errno = saved_errno;
}

void Profiler::Impl::handle_signal() {
  // Async-signal-safe: relaxed/acquire-release atomics, a TLS pointer, and
  // backtrace() (warmed up in start() so libgcc is already loaded).
  if (!active.load(std::memory_order_relaxed)) return;
  Ring* ring = tls_ring;
  if (ring == nullptr) {
    const std::size_t i = claims.fetch_add(1, std::memory_order_relaxed);
    if (i >= rings.size()) {
      unassigned_drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring = rings[i].get();
    ring->tid.store(current_tid(), std::memory_order_relaxed);
    tls_ring = ring;
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  if (head - ring->tail.load(std::memory_order_acquire) >=
      ring->slots.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& s = ring->slots[head % ring->slots.size()];
  const int n = ::backtrace(s.frames, kMaxFrames);
  s.nframes = n > 0 ? static_cast<std::uint16_t>(n) : 0;
  ring->head.store(head + 1, std::memory_order_release);
}

void Profiler::Impl::drain_locked() {
  const std::size_t claimed = std::min(
      claims.load(std::memory_order_acquire), rings.size());
  for (std::size_t r = 0; r < claimed; ++r) {
    Ring& ring = *rings[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const Sample& s = ring.slots[tail % ring.slots.size()];
      std::vector<void*> key(s.frames, s.frames + s.nframes);
      ++agg[r][key];
      ++agg_samples[r];
      ++total_samples;
    }
    ring.tail.store(tail, std::memory_order_release);
    if (ring.name.empty()) {
      const std::uint32_t tid = ring.tid.load(std::memory_order_relaxed);
      if (tid != 0) ring.name = thread_comm(tid);
    }
  }
}

void Profiler::Impl::collector_loop() {
  collector_tid = current_tid();
  // Keep SIGPROF off the bookkeeping threads: in CPU mode the kernel then
  // delivers the process-directed signal to a real worker instead.
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &block, nullptr);

  std::unique_lock lock(wake_mutex);
  while (!shutdown) {
    wake_cv.wait_for(lock, std::chrono::milliseconds(200));
    const std::scoped_lock agg_lock(agg_mutex);
    drain_locked();
  }
}

void Profiler::Impl::wall_loop() {
  sampler_tid = current_tid();
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &block, nullptr);

  const auto period =
      std::chrono::nanoseconds(1'000'000'000LL / std::max(1, options.hz));
  const pid_t pid = ::getpid();
  std::vector<std::uint32_t> tids;
  auto refresh_deadline = std::chrono::steady_clock::now();
  auto next_tick = std::chrono::steady_clock::now() + period;
  std::unique_lock lock(wake_mutex);
  while (!shutdown) {
    if (wake_cv.wait_until(lock, next_tick, [this] { return shutdown; })) {
      break;
    }
    next_tick += period;
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    if (now >= refresh_deadline) {
      // Enumerating /proc/self/task covers every thread with no
      // registration; refreshed every 250ms, not per tick.
      tids.clear();
      if (DIR* dir = ::opendir("/proc/self/task")) {
        while (const dirent* entry = ::readdir(dir)) {
          const long tid = std::strtol(entry->d_name, nullptr, 10);
          if (tid > 0) tids.push_back(static_cast<std::uint32_t>(tid));
        }
        ::closedir(dir);
      }
      refresh_deadline = now + std::chrono::milliseconds(250);
    }
    for (const std::uint32_t tid : tids) {
      if (tid == sampler_tid || tid == collector_tid) continue;
      ::syscall(SYS_tgkill, pid, tid, SIGPROF);
    }
    lock.lock();
  }
}

std::uint64_t Profiler::Impl::ring_dropped() const {
  std::uint64_t total = unassigned_drops.load(std::memory_order_relaxed);
  for (const auto& ring : rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

bool Profiler::start(const Options& options) {
  if (impl_ == nullptr) {
    impl_ = new Impl();  // intentionally immortal; see class comment
  }
  const std::scoped_lock state(impl_->state_mutex);
  if (impl_->active.load(std::memory_order_relaxed)) {
    error_ = "profiler already running";
    return false;
  }
  if (options.hz < 1 || options.hz > 10'000) {
    error_ = "profiler hz out of range [1, 10000]";
    return false;
  }
  impl_->options = options;
  if (impl_->rings.empty()) {
    // Ring geometry is a first-start decision: rings are immortal (the
    // stale-signal guarantee) so they cannot be resized later.
    const std::size_t threads = std::max<std::size_t>(1, options.max_threads);
    const std::size_t capacity =
        std::max<std::size_t>(64, options.ring_capacity);
    for (std::size_t i = 0; i < threads; ++i) {
      auto ring = std::make_unique<Ring>();
      ring->slots.resize(capacity);
      impl_->rings.push_back(std::move(ring));
    }
  }
  {
    const std::scoped_lock agg_lock(impl_->agg_mutex);
    impl_->agg.assign(impl_->rings.size(), {});
    impl_->agg_samples.assign(impl_->rings.size(), 0);
    impl_->total_samples = 0;
    impl_->unassigned_drops.store(0, std::memory_order_relaxed);
    for (auto& ring : impl_->rings) {
      // Drop any stale pre-start backlog rather than attributing it to the
      // new session.
      ring->tail.store(ring->head.load(std::memory_order_acquire),
                       std::memory_order_release);
      ring->dropped.store(0, std::memory_order_relaxed);
    }
  }

  // Warm up the unwinder on this (non-signal) thread: glibc's backtrace
  // dlopens libgcc on first use, which must never happen inside a handler.
  void* warmup[4];
  ::backtrace(warmup, 4);

  struct sigaction action {};
  action.sa_sigaction = tbd_profiler_signal_handler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &impl_->previous_action) != 0) {
    error_ = std::string("sigaction(SIGPROF): ") + std::strerror(errno);
    return false;
  }

  impl_->shutdown = false;
  impl_->started_at = std::chrono::steady_clock::now();
  impl_->session_us.store(0, std::memory_order_relaxed);
  g_impl.store(impl_, std::memory_order_release);
  impl_->active.store(true, std::memory_order_release);
  impl_->collector = std::thread([this] { impl_->collector_loop(); });

  if (options.mode == Options::Mode::kWall) {
    impl_->wall_sampler = std::thread([this] { impl_->wall_loop(); });
  } else {
    itimerval timer{};
    timer.it_interval.tv_sec = 0;
    timer.it_interval.tv_usec =
        static_cast<suseconds_t>(std::max(1L, 1'000'000L / options.hz));
    timer.it_value = timer.it_interval;
    if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
      error_ = std::string("setitimer(ITIMER_PROF): ") + std::strerror(errno);
      impl_->active.store(false, std::memory_order_release);
      {
        const std::scoped_lock wake(impl_->wake_mutex);
        impl_->shutdown = true;
      }
      impl_->wake_cv.notify_all();
      impl_->collector.join();
      ::sigaction(SIGPROF, &impl_->previous_action, nullptr);
      return false;
    }
  }
  error_.clear();
  return true;
}

void Profiler::stop() {
  if (impl_ == nullptr) return;
  const std::scoped_lock state(impl_->state_mutex);
  if (!impl_->active.load(std::memory_order_relaxed)) return;

  impl_->session_us.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - impl_->started_at)
              .count()),
      std::memory_order_relaxed);
  impl_->active.store(false, std::memory_order_release);
  if (impl_->options.mode == Options::Mode::kCpu) {
    itimerval off{};
    ::setitimer(ITIMER_PROF, &off, nullptr);
  }
  {
    const std::scoped_lock wake(impl_->wake_mutex);
    impl_->shutdown = true;
  }
  impl_->wake_cv.notify_all();
  if (impl_->wall_sampler.joinable()) impl_->wall_sampler.join();
  if (impl_->collector.joinable()) impl_->collector.join();
  ::sigaction(SIGPROF, &impl_->previous_action, nullptr);
  // An in-flight handler that passed the active check before the store is
  // finishing against immortal rings; give it a beat before the final
  // drain so its sample lands in this session's aggregate.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::scoped_lock agg_lock(impl_->agg_mutex);
  impl_->drain_locked();
}

bool Profiler::running() const {
  return impl_ != nullptr && impl_->active.load(std::memory_order_relaxed);
}

Profiler::Options Profiler::options() const {
  return impl_ != nullptr ? impl_->options : Options();
}

std::uint64_t Profiler::samples() {
  if (impl_ == nullptr) return 0;
  const std::scoped_lock agg_lock(impl_->agg_mutex);
  impl_->drain_locked();
  return impl_->total_samples;
}

std::uint64_t Profiler::dropped() {
  if (impl_ == nullptr) return 0;
  const std::scoped_lock agg_lock(impl_->agg_mutex);
  return impl_->ring_dropped();
}

std::uint64_t Profiler::duration_us() const {
  if (impl_ == nullptr) return 0;
  if (impl_->active.load(std::memory_order_relaxed)) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - impl_->started_at)
            .count());
  }
  return impl_->session_us.load(std::memory_order_relaxed);
}

namespace {

/// dladdr + demangle, cached per PC. The handler frames and the signal
/// trampoline are identified by name and stripped by the caller.
class SymbolCache {
 public:
  const std::string& resolve(void* pc) {
    auto it = cache_.find(pc);
    if (it != cache_.end()) return it->second;
    std::string name;
    Dl_info info{};
    if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
      int status = 0;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      name = status == 0 && demangled != nullptr ? demangled : info.dli_sname;
      std::free(demangled);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%zx",
                    reinterpret_cast<std::size_t>(pc));
      name = buf;
    }
    return cache_.emplace(pc, std::move(name)).first->second;
  }

 private:
  std::map<void*, std::string> cache_;
};

bool is_unresolved(const std::string& name) {
  return name.size() > 2 && name[0] == '0' && name[1] == 'x';
}

bool is_profiler_frame(const std::string& name) {
  return name == "tbd_profiler_signal_handler" || name == "__restore_rt" ||
         name.find("profiler_signal") != std::string::npos ||
         name.find("Profiler::Impl::handle_signal") != std::string::npos;
}

}  // namespace

std::vector<ProfileStack> Profiler::collect() {
  if (impl_ == nullptr) return {};
  const std::scoped_lock agg_lock(impl_->agg_mutex);
  impl_->drain_locked();
  SymbolCache symbols;
  std::vector<ProfileStack> out;
  for (std::size_t r = 0; r < impl_->agg.size(); ++r) {
    if (impl_->agg[r].empty()) continue;
    const std::string thread =
        impl_->rings[r]->name.empty()
            ? "tid" +
                  std::to_string(
                      impl_->rings[r]->tid.load(std::memory_order_relaxed))
            : impl_->rings[r]->name;
    for (const auto& [raw, count] : impl_->agg[r]) {
      ProfileStack stack;
      stack.thread = thread;
      stack.count = count;
      // Raw frames are leaf-first and start inside the signal machinery;
      // strip those, then reverse so the fold reads root -> leaf.
      std::size_t begin = 0;
      // Sanitizer builds interpose on backtrace(), leaving unsymbolized
      // interceptor frames leafward of the handler. Skip a leading
      // unresolved run only when a profiler frame follows it, so a bare
      // hex leaf of a real stack is never eaten.
      std::size_t probe = 0;
      while (probe < raw.size() &&
             is_unresolved(symbols.resolve(raw[probe]))) {
        ++probe;
      }
      if (probe < raw.size() &&
          is_profiler_frame(symbols.resolve(raw[probe]))) {
        begin = probe;
      }
      while (begin < raw.size() &&
             is_profiler_frame(symbols.resolve(raw[begin]))) {
        ++begin;
      }
      // The sigreturn trampoline follows the handler frames and often has
      // no dynamic symbol; drop it too when we stripped handler frames.
      if (begin > 0 && begin < raw.size() &&
          is_unresolved(symbols.resolve(raw[begin]))) {
        ++begin;
      }
      for (std::size_t i = raw.size(); i > begin; --i) {
        stack.frames.push_back(symbols.resolve(raw[i - 1]));
      }
      if (stack.frames.empty()) stack.frames.push_back("?");
      out.push_back(std::move(stack));
    }
  }
  return out;
}

std::vector<ProfileThreadCount> Profiler::thread_samples() {
  if (impl_ == nullptr) return {};
  const std::scoped_lock agg_lock(impl_->agg_mutex);
  impl_->drain_locked();
  std::map<std::string, std::uint64_t> by_thread;
  for (std::size_t r = 0; r < impl_->agg_samples.size(); ++r) {
    if (impl_->agg_samples[r] == 0) continue;
    const std::string thread =
        impl_->rings[r]->name.empty()
            ? "tid" +
                  std::to_string(
                      impl_->rings[r]->tid.load(std::memory_order_relaxed))
            : impl_->rings[r]->name;
    by_thread[thread] += impl_->agg_samples[r];
  }
  std::vector<ProfileThreadCount> out;
  for (const auto& [thread, count] : by_thread) out.push_back({thread, count});
  return out;
}

std::string Profiler::folded() { return fold_stacks(collect()); }

std::string Profiler::json() {
  const bool was_running = running();
  const auto stacks = collect();
  const auto threads = thread_samples();
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.samples;

  std::string out = "{\"schema_version\":" +
                    std::to_string(kProfileSchemaVersion) + ",\"mode\":\"" +
                    to_string(options().mode) +
                    "\",\"hz\":" + std::to_string(options().hz) +
                    ",\"running\":" + (was_running ? "true" : "false") +
                    ",\"duration_us\":" + std::to_string(duration_us()) +
                    ",\"samples\":" + std::to_string(total) +
                    ",\"dropped\":" + std::to_string(dropped()) +
                    ",\"threads\":[";
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (i) out += ',';
    out += "{\"thread\":\"" + detail::json_escape(threads[i].thread) +
           "\",\"samples\":" + std::to_string(threads[i].samples) + "}";
  }
  out += "],\"stacks\":[";
  // Render from the folded form so JSON and folded output agree on merge
  // order and the document is deterministic for a given aggregate.
  const std::string folded_text = fold_stacks(stacks);
  bool first = true;
  std::size_t at = 0;
  while (at < folded_text.size()) {
    const std::size_t eol = folded_text.find('\n', at);
    const std::string line = folded_text.substr(at, eol - at);
    at = eol + 1;
    const std::size_t count_sep = line.rfind(' ');
    if (count_sep == std::string::npos) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"stack\":[";
    std::size_t frame_at = 0;
    bool first_frame = true;
    while (frame_at <= count_sep) {
      std::size_t frame_end = line.find(';', frame_at);
      if (frame_end == std::string::npos || frame_end > count_sep) {
        frame_end = count_sep;
      }
      if (!first_frame) out += ',';
      first_frame = false;
      out += '"' +
             detail::json_escape(line.substr(frame_at, frame_end - frame_at)) +
             '"';
      frame_at = frame_end + 1;
    }
    out += "],\"count\":" + line.substr(count_sep + 1) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace tbd::obs

#endif  // TBD_OBS_DISABLED
