#include "obs/manifest.h"

#include <cstdio>
#include <fstream>

#include "util/thread_pool.h"

#ifndef TBD_GIT_DESCRIBE
#define TBD_GIT_DESCRIBE "unknown"
#endif

namespace tbd::obs {

const char* git_describe() { return TBD_GIT_DESCRIBE; }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void publish_pool_stats(Registry& registry) {
  const auto stats = shared_pool().stats();
  registry.counter("tbd_pool_jobs_total").add(stats.jobs);
  registry.counter("tbd_pool_tasks_total").add(stats.tasks);
  registry.counter("tbd_pool_tasks_inline_total").add(stats.tasks_inline);
  registry.counter("tbd_pool_busy_us_total").add(stats.busy_us);
  registry.counter("tbd_pool_queue_wait_us_total").add(stats.queue_wait_us);
  registry.gauge("tbd_pool_threads").set(shared_pool().size());
  for (std::size_t w = 0; w < stats.worker_busy_us.size(); ++w) {
    registry.gauge("tbd_pool_worker_busy_us{worker=" + std::to_string(w) + "}")
        .set(static_cast<double>(stats.worker_busy_us[w]));
  }
}

void publish_pool_gauges(Registry& registry) {
  const auto stats = shared_pool().stats();
  registry.gauge("tbd_pool_jobs").set(static_cast<double>(stats.jobs));
  registry.gauge("tbd_pool_tasks").set(static_cast<double>(stats.tasks));
  registry.gauge("tbd_pool_tasks_inline")
      .set(static_cast<double>(stats.tasks_inline));
  registry.gauge("tbd_pool_busy_us").set(static_cast<double>(stats.busy_us));
  registry.gauge("tbd_pool_queue_wait_us")
      .set(static_cast<double>(stats.queue_wait_us));
  registry.gauge("tbd_pool_threads").set(shared_pool().size());
  registry.gauge("tbd_pool_stalls")
      .set(static_cast<double>(shared_pool().stalls_detected()));
  for (std::size_t w = 0; w < stats.worker_busy_us.size(); ++w) {
    registry
        .gauge("tbd_pool_worker_busy_us_live",
               {{"worker", std::to_string(w)}})
        .set(static_cast<double>(stats.worker_busy_us[w]));
  }
}

std::string run_manifest_json(const RunInfo& info, const Registry& registry,
                              const Tracer& tracer) {
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"tool\": \"" + json_escape(info.tool) + "\",\n";
  out += "  \"git\": \"" + json_escape(git_describe()) + "\",\n";
  out += "  \"threads\": " + std::to_string(ThreadPool::default_thread_count()) +
         ",\n";
  out += "  \"config\": {";
  for (std::size_t i = 0; i < info.config.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(info.config[i].first) + "\": \"" +
           json_escape(info.config[i].second) + "\"";
  }
  out += "},\n";
  out += "  \"metrics\": " + registry.to_json() + ",\n";
  out += "  \"span_rollup\": {";
  const auto rollups = Tracer::rollup(tracer.collect());
  bool first = true;
  for (const auto& [name, r] : rollups) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(r.count) + ", \"total_us\": " +
           std::to_string(r.total_us) + ", \"max_us\": " +
           std::to_string(r.max_us) + "}";
  }
  out += "},\n";
  out += "  \"spans_dropped\": " + std::to_string(tracer.dropped()) + "\n";
  out += "}\n";
  return out;
}

bool write_run_manifest(const std::string& path, const RunInfo& info,
                        const Registry& registry, const Tracer& tracer) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) return false;
  out << run_manifest_json(info, registry, tracer);
  return static_cast<bool>(out);
}

}  // namespace tbd::obs
