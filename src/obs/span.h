// Pipeline span tracing: RAII scopes recorded into per-thread ring buffers,
// exportable as Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev). This is the repo's own request-path view — the
// same span/causal-path idea the black-box reconstructor applies to n-tier
// messages, pointed at our analysis pipeline instead.
//
// Usage:
//   void fit() {
//     TBD_SPAN("detector.fit_n_star");
//     ...work...
//   }  // span recorded on scope exit
//
// Cost model: when the tracer is disabled (the default) a span is one
// relaxed atomic load; when enabled it is two steady_clock reads plus one
// ring-buffer store on the owning thread. Span names must be string
// literals (or otherwise outlive the tracer) — only the pointer is stored.
// Compile with TBD_OBS_DISABLED (cmake -DTBD_OBS=OFF) to make TBD_SPAN
// vanish entirely.
//
// Threading: pushes are single-producer per thread and never block. Ring
// registration takes a mutex once per thread. collect()/export are exact at
// quiescent points (after pool work drained — where all callers sit); a
// collect raced against active writers may miss or see partially-overwritten
// wrapped entries, never crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tbd::obs {

/// One completed span. Times are microseconds since the tracer was enabled.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;    // dense per-tracer thread index
  std::uint32_t depth = 0;  // nesting depth on its thread (0 = root span)
};

/// Aggregate of all spans sharing a name (the manifest's per-stage rollup).
struct SpanRollup {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by TBD_SPAN.
  [[nodiscard]] static Tracer& global();

  /// Starts recording. `ring_capacity` bounds spans kept per thread (newest
  /// win; see dropped()). A thread's ring keeps its original capacity across
  /// re-enables.
  void enable(std::size_t ring_capacity = 1 << 14);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Snapshot of all recorded spans, oldest-first per thread.
  [[nodiscard]] std::vector<SpanRecord> collect() const;
  /// Spans lost to ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Forgets recorded spans (rings stay registered). Call when quiescent.
  void clear();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Per-name aggregation of collect().
  [[nodiscard]] static std::map<std::string, SpanRollup> rollup(
      const std::vector<SpanRecord>& spans);

  /// Microseconds since enable() (0 when never enabled).
  [[nodiscard]] std::uint64_t now_us() const;

 private:
  friend class SpanScope;

  struct ThreadRing {
    std::vector<SpanRecord> slots;
    std::atomic<std::uint64_t> count{0};  // total pushed; slot = i % capacity
    std::uint32_t tid = 0;
    std::uint32_t depth = 0;  // touched only by the owning thread

    void push(const SpanRecord& r) {
      const std::uint64_t n = count.load(std::memory_order_relaxed);
      slots[n % slots.size()] = r;
      count.store(n + 1, std::memory_order_release);
    }
  };

  /// The calling thread's ring (registered on first use; stable address).
  ThreadRing& local_ring();

  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;  // steady_clock at enable()
  std::size_t ring_capacity_ = 1 << 14;
  mutable std::mutex mutex_;  // guards rings_ registration + collect
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// RAII span; records on destruction if the tracer was enabled at entry.
class SpanScope {
 public:
  explicit SpanScope(const char* name);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer::ThreadRing* ring_ = nullptr;  // null = tracer off at entry
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
};

#ifdef TBD_OBS_DISABLED
#define TBD_SPAN(name)
#else
#define TBD_OBS_CONCAT_INNER(a, b) a##b
#define TBD_OBS_CONCAT(a, b) TBD_OBS_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define TBD_SPAN(name) \
  ::tbd::obs::SpanScope TBD_OBS_CONCAT(tbd_span_, __LINE__) { name }
#endif

}  // namespace tbd::obs
