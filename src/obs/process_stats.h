// Process-level self-stats: the watcher measuring itself. One sample() call
// reads getrusage + /proc (Linux; fields degrade to zero elsewhere) and one
// publish call projects the sample onto `tbd_process_*` gauges, so a scrape
// of a live tool also covers the tool. Gauges use set() semantics —
// republishing every scrape is safe, unlike the once-only counter rollups
// in obs/manifest.
#pragma once

#include <cstdint>

namespace tbd::obs {

class Registry;

struct ProcessStats {
  std::uint64_t rss_bytes = 0;        ///< resident set, bytes
  double cpu_user_seconds = 0.0;      ///< getrusage ru_utime
  double cpu_system_seconds = 0.0;    ///< getrusage ru_stime
  double uptime_seconds = 0.0;        ///< wall time since process start
  std::int64_t threads = 0;           ///< live threads (/proc/self/status)
  std::int64_t open_fds = 0;          ///< open descriptors (/proc/self/fd)
  std::uint64_t max_rss_bytes = 0;    ///< peak RSS (ru_maxrss)
};

/// Samples the current process. Cheap (a few /proc reads); fine per scrape.
[[nodiscard]] ProcessStats sample_process_stats();

/// Sets the `tbd_process_*` gauges from a sample. Call per scrape.
void publish_process_stats(Registry& registry, const ProcessStats& stats);

/// sample + publish in one step.
void publish_process_stats(Registry& registry);

}  // namespace tbd::obs
