#include "obs/introspection.h"

#include <unistd.h>

#include "obs/exposition.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"
#include "util/thread_pool.h"

namespace tbd::obs {

namespace {

std::string str(const std::string& s) {
  return "\"" + detail::json_escape(s) + "\"";
}

std::string bool_json(bool v) { return v ? "true" : "false"; }

}  // namespace

Introspection::Introspection(Options options) : options_{std::move(options)} {}

void Introspection::add_status_source(std::string key,
                                      std::function<std::string()> source) {
  sources_.emplace_back(std::move(key), std::move(source));
}

std::string Introspection::statusz_json() const {
  const ProcessStats process = sample_process_stats();
  auto& profiler = Profiler::global();

  std::string out = "{\"schema_version\":" +
                    std::to_string(kIntrospectionSchemaVersion) +
                    ",\"tool\":" + str(options_.tool) +
                    ",\"git\":" + str(git_describe()) +
                    ",\"pid\":" + std::to_string(::getpid()) +
                    ",\"threads\":" +
                    std::to_string(ThreadPool::default_thread_count()) +
                    ",\"uptime_seconds\":";
  detail::append_number(out, process.uptime_seconds);
  for (const auto& [key, value] : options_.info) {
    out += "," + str(key) + ":" + str(value);
  }
  out += ",\"process\":{\"rss_bytes\":" + std::to_string(process.rss_bytes) +
         ",\"max_rss_bytes\":" + std::to_string(process.max_rss_bytes) +
         ",\"cpu_user_seconds\":";
  detail::append_number(out, process.cpu_user_seconds);
  out += ",\"cpu_system_seconds\":";
  detail::append_number(out, process.cpu_system_seconds);
  out += ",\"threads\":" + std::to_string(process.threads) +
         ",\"open_fds\":" + std::to_string(process.open_fds) + "}";
  out += ",\"profiler\":{\"running\":" + bool_json(profiler.running()) +
         ",\"mode\":" + str(to_string(profiler.options().mode)) +
         ",\"hz\":" + std::to_string(profiler.options().hz) +
         ",\"samples\":" + std::to_string(profiler.samples()) +
         ",\"dropped\":" + std::to_string(profiler.dropped()) +
         ",\"duration_us\":" + std::to_string(profiler.duration_us()) + "}";
  for (const auto& [key, source] : sources_) {
    out += "," + str(key) + ":" + source();
  }
  out += "}";
  return out;
}

std::string Introspection::threadz_json() const {
  auto& pool = shared_pool();
  std::string out = "{\"schema_version\":" +
                    std::to_string(kIntrospectionSchemaVersion) +
                    ",\"watchdog_running\":" +
                    bool_json(pool.watchdog_running()) +
                    ",\"stalls_detected\":" +
                    std::to_string(pool.stalls_detected()) + ",\"pool\":{" +
                    "\"threads\":" + std::to_string(pool.size()) +
                    ",\"workers\":[";
  bool first = true;
  for (const auto& info : pool.thread_info()) {
    if (!first) out += ",";
    first = false;
    out += "{\"slot\":" + std::to_string(info.slot) +
           ",\"name\":" + str(info.name) +
           ",\"running\":" + bool_json(info.running) +
           ",\"stalled\":" + bool_json(info.stalled) +
           ",\"task_index\":" + std::to_string(info.task_index) +
           ",\"task_elapsed_us\":" + std::to_string(info.task_elapsed_us) +
           ",\"tasks\":" + std::to_string(info.tasks) +
           ",\"busy_us\":" + std::to_string(info.busy_us) + "}";
  }
  out += "]},\"slow_tasks\":[";
  first = true;
  for (const auto& slow : pool.slow_tasks()) {
    if (!first) out += ",";
    first = false;
    out += "{\"duration_us\":" + std::to_string(slow.duration_us) +
           ",\"slot\":" + std::to_string(slow.slot) +
           ",\"task_index\":" + std::to_string(slow.task_index) + "}";
  }
  out += "]}";
  return out;
}

void Introspection::wire(ExpositionServer& server) {
  server.handle("/statusz", "application/json",
                [this] { return statusz_json(); });
  server.handle("/threadz", "application/json",
                [this] { return threadz_json(); });
  server.handle("/profilez", "application/json",
                [] { return Profiler::global().json(); });
}

}  // namespace tbd::obs
