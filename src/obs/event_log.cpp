#include "obs/event_log.h"

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace tbd::obs {

namespace {

// Shorthands: the event log shares the metrics exporters' bit-exact number
// rendering and JSON escaping so goldens pin one formatting policy.
std::string num(double v) { return detail::format_number(v); }
std::string str(std::string_view s) {
  return "\"" + detail::json_escape(s) + "\"";
}

}  // namespace

namespace {

// Journal write+flush latency in µs: per-event flushes are page-cache
// writes normally; the top buckets catch a blocking filesystem.
const std::vector<double> kFlushBoundsUs = {5,   10,   25,   50,
                                            100, 1000, 5000, 50000};

}  // namespace

EventLog::EventLog(
    std::ostream* out, Options options,
    const std::vector<std::pair<std::string, std::string>>& meta)
    : out_{out}, options_{options} {
  if (options_.registry != nullptr) {
    flush_us_ = &options_.registry->histogram("tbd_event_log_flush_us",
                                              kFlushBoundsUs);
    bytes_total_ = &options_.registry->counter("tbd_event_log_bytes_total");
  }
  std::string body = "\"type\":\"meta\",\"seq\":0,\"schema_version\":" +
                     std::to_string(kEventLogSchemaVersion);
  for (const auto& [key, value] : meta) {
    body += "," + str(key) + ":" + str(value);
  }
  const std::scoped_lock lock(mutex_);
  write_line("{" + body + "}", nullptr);
}

std::uint64_t EventLog::interval_sealed(std::string_view stream,
                                        std::uint64_t index, std::int64_t t_us,
                                        double load, double tput,
                                        std::string_view state) {
  // The per-interval hot path: one buffer, appended in place.
  std::string body;
  body.reserve(128 + stream.size());
  body += "\"type\":\"interval_sealed\",\"stream\":\"";
  body += detail::json_escape(stream);
  body += "\",\"index\":";
  body += std::to_string(index);
  body += ",\"t_us\":";
  body += std::to_string(t_us);
  body += ",\"load\":";
  detail::append_number(body, load);
  body += ",\"tput\":";
  detail::append_number(body, tput);
  body += ",\"state\":\"";
  body += detail::json_escape(state);
  body += '"';
  return emit(body, nullptr);
}

std::uint64_t EventLog::episode_open(std::string_view stream,
                                     std::uint64_t index, std::int64_t t_us) {
  return emit("\"type\":\"episode_open\",\"stream\":" + str(stream) +
                  ",\"index\":" + std::to_string(index) +
                  ",\"t_us\":" + std::to_string(t_us),
              nullptr);
}

std::uint64_t EventLog::episode_close(std::string_view stream,
                                      std::int64_t start_us,
                                      std::int64_t duration_us,
                                      double peak_load, bool contains_freeze) {
  // The /episodes ring stores the same fields minus type/seq, so the JSON
  // document is self-contained per episode.
  const std::string fields =
      "\"stream\":" + str(stream) + ",\"start_us\":" +
      std::to_string(start_us) + ",\"duration_us\":" +
      std::to_string(duration_us) + ",\"peak_load\":" + num(peak_load) +
      ",\"freeze\":" + (contains_freeze ? "true" : "false");
  const std::string episode_obj = "{" + fields + "}";
  return emit("\"type\":\"episode_close\"," + fields, &episode_obj);
}

std::uint64_t EventLog::events_emitted() const {
  const std::scoped_lock lock(mutex_);
  return seq_;
}

std::vector<std::string> EventLog::recent() const {
  const std::scoped_lock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::string EventLog::episodes_json() const {
  const std::scoped_lock lock(mutex_);
  std::string out = "{\"schema_version\":" +
                    std::to_string(kEventLogSchemaVersion) + ",\"episodes\":[";
  bool first = true;
  for (const auto& e : episode_ring_) {
    if (!first) out += ",";
    first = false;
    out += e;
  }
  out += "]}";
  return out;
}

void EventLog::flush() {
  const std::scoped_lock lock(mutex_);
  if (out_ != nullptr) out_->flush();
}

std::uint64_t EventLog::emit(const std::string& body,
                             const std::string* episode_obj) {
  const std::scoped_lock lock(mutex_);
  ++seq_;
  // Builds the line with its seq stamped after the type, keeping field
  // order fixed across all event kinds: {"type":...,"seq":N,...}. One
  // buffer, appended in place — this path runs per sealed interval.
  const auto type_end = body.find(',');
  std::string line;
  line.reserve(body.size() + 32);
  line += '{';
  line.append(body, 0, type_end);
  line += ",\"seq\":";
  line += std::to_string(seq_);
  line.append(body, type_end, std::string::npos);
  line += '}';
  write_line(std::move(line), episode_obj);
  return seq_;
}

void EventLog::write_line(std::string line, const std::string* episode_obj) {
  if (out_ != nullptr) {
    if (flush_us_ != nullptr) {
      // Self-timed write: the registry opt-in pays two clock reads per
      // event; without it this is the historic clock-free path.
      const auto t0 = std::chrono::steady_clock::now();
      *out_ << line << '\n';
      if (options_.flush_per_event) out_->flush();
      flush_us_->observe(
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()) /
          1e3);
      bytes_total_->add(line.size() + 1);
    } else {
      *out_ << line << '\n';
      if (options_.flush_per_event) out_->flush();
    }
  }
  // seq_ is still 0 while the constructor writes the meta record; the
  // recent-event ring holds events only (matching events_emitted()).
  if (options_.ring_capacity > 0 && seq_ > 0) {
    ring_.push_back(std::move(line));
    while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  }
  if (episode_obj != nullptr && options_.episode_ring_capacity > 0) {
    episode_ring_.push_back(*episode_obj);
    while (episode_ring_.size() > options_.episode_ring_capacity) {
      episode_ring_.pop_front();
    }
  }
}

}  // namespace tbd::obs
