// Minimal dependency-free scrape endpoint: a blocking HTTP/1.1 server just
// big enough for Prometheus and a human with curl.
//
// Scope is deliberately tiny — GET only, one request per connection
// (Connection: close), responses rendered by registered handlers at request
// time. That is exactly the access pattern of a scraper hitting /metrics
// every few seconds, and it keeps the implementation at "plain POSIX
// sockets + poll", no third-party HTTP stack. The accept loop runs on one
// background thread; handlers must therefore be thread-safe against the
// replay thread (Registry and EventLog both are).
//
// Standard routes wired by tbd_watch:
//   /metrics  -> Registry::to_prometheus()   (text/plain; version=0.0.4)
//   /healthz  -> "ok"                        (text/plain)
//   /episodes -> EventLog::episodes_json()   (application/json)
//
// Binding port 0 lets the OS pick a free port (tests, tier1.sh); port()
// reports the actual one after start().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tbd::obs {

/// Namespace-scope so it can be a default argument (a nested struct's
/// member initializers are unusable before the enclosing class completes).
struct ExpositionOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = OS-assigned; see ExpositionServer::port().
};

class ExpositionServer {
 public:
  /// Produces a response body; called on the server thread per request.
  using Handler = std::function<std::string()>;

  using Options = ExpositionOptions;

  explicit ExpositionServer(Options options = Options());
  ~ExpositionServer();
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Registers `handler` for exact-match GET `path` (query string ignored).
  /// Must be called before start().
  void handle(std::string path, std::string content_type, Handler handler);

  /// Binds + listens + spawns the accept thread. Returns false (and sets
  /// error()) if the socket can't be bound.
  [[nodiscard]] bool start();
  /// Actual bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Stops accepting, closes the socket, joins the thread. Idempotent.
  void stop();

 private:
  struct Route {
    std::string path;
    std::string content_type;
    Handler handler;
  };

  void serve_loop();
  void serve_one(int client_fd);

  Options options_;
  std::vector<Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace tbd::obs
