// Deterministic Chrome trace_event / Perfetto timeline builder for the
// flight recorder: per-server tracks of visit slices, colored overlay slices
// for detected congestion episodes, and flow arrows stitching one
// transaction across tiers.
//
// This is a pure serializer — it knows nothing about visits, detectors, or
// episodes (src/app/flight_recorder.cpp does the mapping), so src/obs keeps
// its util-only dependency rule. Differences from the span tracer's
// chrome_trace_json (obs/span.h): times here are SIMULATED microseconds, the
// output is fully deterministic (goldenable — no wall clock anywhere), and
// concurrent slices on one logical track are spread across "lanes" (one tid
// per lane) so every tid carries a properly nested B/E stream:
//
//  * a slice goes to the first lane where it either finds the lane free or
//    nests fully inside the currently open slice — so parent/child visits on
//    the same server render nested, and queueing spreads visually into
//    stacked lanes (lane depth == concurrency);
//  * overlay tracks hold "X" complete events (episode bands);
//  * flows are "s"/"t"/"f" events bound to slices by (tid, ts), with the
//    final step binding to its enclosing slice (bp:"e").
//
// Load the output in https://ui.perfetto.dev or chrome://tracing;
// scripts/check_obs_output.py --timeline validates the schema.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tbd::obs {

class TimelineBuilder {
 public:
  using TrackId = std::uint32_t;
  struct SliceRef {
    TrackId track = 0;
    std::uint32_t index = 0;
  };
  /// Key/value pairs for an event's args object. Values must already be
  /// rendered as JSON (use num()/str()).
  using Args = std::vector<std::pair<std::string, std::string>>;

  explicit TimelineBuilder(std::string process_name = "tbd flight recorder")
      : process_name_{std::move(process_name)} {}

  /// A lane-expanding slice track. Lane 0 inherits `name`; extra lanes are
  /// named "<name> ·2", "<name> ·3", ...
  TrackId add_track(std::string name);
  /// A single-lane track for non-overlapping "X" overlay slices.
  TrackId add_overlay_track(std::string name);

  /// [start_us, end_us) slice; emitted as a B/E pair on an automatically
  /// chosen lane of `track`.
  SliceRef add_slice(TrackId track, std::int64_t start_us, std::int64_t end_us,
                     std::string name, std::string category, Args args = {});

  /// Overlay band on an overlay track. `color` is a catapult cname (e.g.
  /// "bad", "terrible"); empty omits it. Bands on one track must not overlap.
  void add_overlay(TrackId track, std::int64_t start_us, std::int64_t end_us,
                   std::string name, std::string color, Args args = {});

  /// Flow arrows through the given slices; `ts` of each point must lie
  /// within its slice. Points are emitted in the order given: first "s",
  /// middle "t", last "f". Needs >= 2 points to be emitted.
  void add_flow(std::uint64_t id, std::string name,
                std::vector<std::pair<SliceRef, std::int64_t>> points);

  /// The whole trace as JSON, one event per line. Deterministic for a given
  /// call sequence.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const;

  /// JSON number with fixed 3-decimal rendering (byte-stable across runs).
  [[nodiscard]] static std::string num(double v);
  [[nodiscard]] static std::string num(std::int64_t v);
  /// JSON string literal (quoted, escaped).
  [[nodiscard]] static std::string str(const std::string& s);

 private:
  struct Slice {
    std::int64_t start = 0;
    std::int64_t end = 0;
    std::string name;
    std::string category;
    Args args;
  };
  struct Overlay {
    std::int64_t start = 0;
    std::int64_t end = 0;
    std::string name;
    std::string color;
    Args args;
  };
  struct Track {
    std::string name;
    bool overlay = false;
    std::vector<Slice> slices;
    std::vector<Overlay> overlays;
  };
  struct Flow {
    std::uint64_t id = 0;
    std::string name;
    std::vector<std::pair<SliceRef, std::int64_t>> points;
  };

  std::string process_name_;
  std::vector<Track> tracks_;
  std::vector<Flow> flows_;
};

}  // namespace tbd::obs
