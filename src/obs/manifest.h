// Run manifests: one JSON document stamping an analysis / bench / sweep run
// with everything needed to compare it against other runs — tool name,
// configuration key/values, seed, thread count, git describe of the build,
// the full metrics snapshot, and per-stage span rollups.
//
// Written by tbd_analyze --metrics-out and the bench binaries' --metrics-out
// flag; validated by scripts/check_obs_output.py in the tier-1 gate.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace tbd::obs {

/// Git describe of the checkout the build was configured from ("unknown"
/// when git was unavailable at configure time).
[[nodiscard]] const char* git_describe();

/// Identity + configuration of one run. `config` entries are emitted in
/// order as JSON strings, so put the interesting keys (seed, width, files)
/// first.
struct RunInfo {
  std::string tool;
  std::vector<std::pair<std::string, std::string>> config;
};

/// Copies the shared thread pool's counters (tasks, busy time, queue wait,
/// per-worker busy) into `registry` as tbd_pool_* metrics. Call once, right
/// before exporting — the pool accumulates from process start.
void publish_pool_stats(Registry& registry);

/// Live-scrape variant of publish_pool_stats: the same pool numbers as
/// gauges with set() semantics, safe to call on every /metrics request
/// (the counter rollup above double-counts if called twice). Also carries
/// the watchdog's stall count as tbd_pool_stalls.
void publish_pool_gauges(Registry& registry);

/// The manifest document. Includes `registry`'s full JSON snapshot and the
/// rollup of `tracer`'s collected spans (empty object when tracing is off).
[[nodiscard]] std::string run_manifest_json(const RunInfo& info,
                                            const Registry& registry,
                                            const Tracer& tracer);

/// Writes run_manifest_json() to `path`; false on I/O failure.
bool write_run_manifest(const std::string& path, const RunInfo& info,
                        const Registry& registry, const Tracer& tracer);

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace tbd::obs
