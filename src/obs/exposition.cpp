#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tbd::obs {

namespace {

// Caps that bound a hostile client: the whole head and the request line
// itself. Anything larger draws 431, not a silent close.
constexpr std::size_t kMaxHeadBytes = 16 * 1024;
constexpr std::size_t kMaxRequestLineBytes = 8 * 1024;

struct RequestHead {
  std::string data;
  bool complete = false;  // saw the end-of-head terminator
  bool overflow = false;  // hit kMaxHeadBytes without a terminator
};

// Reads until the end of the request head (\r\n\r\n), the size cap, or the
// client stops sending; bodies are never expected (GET only). Partial
// sends are fine — the loop keeps reading until a terminator or EOF.
RequestHead read_request_head(int fd) {
  RequestHead head;
  char buf[2048];
  while (head.data.size() < kMaxHeadBytes) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) break;  // idle/hostile client: give up
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    head.data.append(buf, static_cast<std::size_t>(n));
    if (head.data.find("\r\n\r\n") != std::string::npos ||
        head.data.find("\n\n") != std::string::npos) {  // lenient: bare LF
      head.complete = true;
      break;
    }
  }
  head.overflow = !head.complete && head.data.size() >= kMaxHeadBytes;
  return head;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                          MSG_NOSIGNAL
#else
                          0
#endif
    );
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string make_response(const std::string& status,
                          const std::string& content_type,
                          const std::string& body) {
  return "HTTP/1.1 " + status + "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace

ExpositionServer::ExpositionServer(Options options)
    : options_{std::move(options)} {}

ExpositionServer::~ExpositionServer() { stop(); }

void ExpositionServer::handle(std::string path, std::string content_type,
                              Handler handler) {
  routes_.push_back(
      {std::move(path), std::move(content_type), std::move(handler)});
}

bool ExpositionServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad listen host: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    error_ = std::string("bind/listen ") + options_.host + ":" +
             std::to_string(options_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ExpositionServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ExpositionServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Short poll timeout bounds how long stop() waits for the join.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void ExpositionServer::serve_one(int client_fd) {
  const RequestHead head = read_request_head(client_fd);
  // A connection that sent nothing gets nothing back (port scanners,
  // health probes that only test connect()). Everything else is answered.
  if (head.data.empty()) return;
  if (head.overflow) {
    send_all(client_fd,
             make_response("431 Request Header Fields Too Large",
                           "text/plain", "request head too large\n"));
    return;
  }
  const auto eol = head.data.find_first_of("\r\n");
  const std::string line =
      head.data.substr(0, eol == std::string::npos ? head.data.size() : eol);
  if (line.size() > kMaxRequestLineBytes) {
    send_all(client_fd,
             make_response("431 Request Header Fields Too Large",
                           "text/plain", "request line too long\n"));
    return;
  }
  if (!head.complete) {
    // Bytes arrived but the head never terminated (client hung up or went
    // idle mid-request): tell it what went wrong instead of just closing.
    send_all(client_fd, make_response("400 Bad Request", "text/plain",
                                      "incomplete request\n"));
    return;
  }
  // Request line: METHOD SP PATH SP VERSION.
  const auto sp1 = line.find(' ');
  const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    send_all(client_fd,
             make_response("400 Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const auto q = path.find('?'); q != std::string::npos) {
    path.resize(q);  // handlers take no parameters; drop the query string
  }
  if (method != "GET" && method != "HEAD") {
    send_all(client_fd, make_response("405 Method Not Allowed", "text/plain",
                                      "GET only\n"));
    return;
  }
  for (const auto& route : routes_) {
    if (route.path != path) continue;
    const std::string body = route.handler();
    std::string response =
        make_response("200 OK", route.content_type, body);
    if (method == "HEAD") {
      response.resize(response.size() - body.size());
    }
    send_all(client_fd, response);
    return;
  }
  send_all(client_fd,
           make_response("404 Not Found", "text/plain", "not found\n"));
}

}  // namespace tbd::obs
