#include "obs/process_stats.h"

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace tbd::obs {

namespace {

double timeval_seconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) / 1e6;
}

/// Seconds since boot at which this process started (clock ticks in field
/// 22 of /proc/self/stat, after the parenthesized comm which may itself
/// contain spaces — hence the rfind(')')).
double process_start_after_boot_seconds() {
  std::FILE* f = std::fopen("/proc/self/stat", "r");
  if (f == nullptr) return -1.0;
  char buf[1024] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  if (n == 0) return -1.0;
  const char* after_comm = std::strrchr(buf, ')');
  if (after_comm == nullptr) return -1.0;
  // after ')' the next token is field 3 (state); starttime is field 22.
  long long starttime_ticks = 0;
  int field = 2;
  const char* p = after_comm + 1;
  while (*p != '\0' && field < 22) {
    while (*p == ' ') ++p;
    if (++field == 22) {
      starttime_ticks = std::strtoll(p, nullptr, 10);
      break;
    }
    while (*p != '\0' && *p != ' ') ++p;
  }
  const long ticks_per_sec = ::sysconf(_SC_CLK_TCK);
  if (field != 22 || ticks_per_sec <= 0) return -1.0;
  return static_cast<double>(starttime_ticks) /
         static_cast<double>(ticks_per_sec);
}

double boot_uptime_seconds() {
  std::FILE* f = std::fopen("/proc/uptime", "r");
  if (f == nullptr) return -1.0;
  double up = -1.0;
  if (std::fscanf(f, "%lf", &up) != 1) up = -1.0;
  std::fclose(f);
  return up;
}

std::int64_t count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::int64_t n = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  ::closedir(dir);
  // The directory handle itself is one of the entries counted.
  return n > 0 ? n - 1 : 0;
}

}  // namespace

ProcessStats sample_process_stats() {
  ProcessStats stats;

  rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.cpu_user_seconds = timeval_seconds(usage.ru_utime);
    stats.cpu_system_seconds = timeval_seconds(usage.ru_stime);
    stats.max_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
  }

  // Current RSS from statm (pages), threads from status.
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long size_pages = 0;
    long long rss_pages = 0;
    if (std::fscanf(f, "%lld %lld", &size_pages, &rss_pages) == 2) {
      const long page = ::sysconf(_SC_PAGESIZE);
      if (page > 0 && rss_pages > 0) {
        stats.rss_bytes =
            static_cast<std::uint64_t>(rss_pages) *
            static_cast<std::uint64_t>(page);
      }
    }
    std::fclose(f);
  }
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "Threads:", 8) == 0) {
        stats.threads = std::strtoll(line + 8, nullptr, 10);
        break;
      }
    }
    std::fclose(f);
  }
  stats.open_fds = count_open_fds();

  const double boot_up = boot_uptime_seconds();
  const double start_after_boot = process_start_after_boot_seconds();
  if (boot_up >= 0.0 && start_after_boot >= 0.0 &&
      boot_up >= start_after_boot) {
    stats.uptime_seconds = boot_up - start_after_boot;
  }
  return stats;
}

void publish_process_stats(Registry& registry, const ProcessStats& stats) {
  registry.gauge("tbd_process_rss_bytes")
      .set(static_cast<double>(stats.rss_bytes));
  registry.gauge("tbd_process_max_rss_bytes")
      .set(static_cast<double>(stats.max_rss_bytes));
  registry.gauge("tbd_process_cpu_user_seconds").set(stats.cpu_user_seconds);
  registry.gauge("tbd_process_cpu_system_seconds")
      .set(stats.cpu_system_seconds);
  registry.gauge("tbd_process_uptime_seconds").set(stats.uptime_seconds);
  registry.gauge("tbd_process_threads")
      .set(static_cast<double>(stats.threads));
  registry.gauge("tbd_process_open_fds")
      .set(static_cast<double>(stats.open_fds));
}

void publish_process_stats(Registry& registry) {
  publish_process_stats(registry, sample_process_stats());
}

}  // namespace tbd::obs
