#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdio>

namespace tbd::obs {

namespace detail {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return mine;
}

void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void append_number(std::string& out, double v) {
  // to_chars(general, 17) is specified to render "as if by %.17g" but skips
  // the locale and varargs machinery — it sits on the event log's per-seal
  // path, where the snprintf version dominated the line cost. The fallback
  // keeps the exact same bytes if the buffer ever proves too small.
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
  if (ec != std::errc{}) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
    return;
  }
  out.append(buf, ptr);
}

std::string format_number(double v) {
  std::string out;
  append_number(out, v);
  return out;
}

// JSON string escaping for export keys/values: the rendered label block
// carries '"' and '\' characters that must not break the manifest JSON.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Splices extra labels (e.g. le="...") into an already-rendered block:
// "" + le -> {le}, {a="b"} + le -> {a="b",le}.
std::string with_label(const std::string& block, const std::string& extra) {
  if (block.empty()) return "{" + extra + "}";
  return block.substr(0, block.size() - 1) + "," + extra + "}";
}

}  // namespace
}  // namespace detail

std::string sanitize_metric_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  const auto valid = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    return alpha || c == '_' || c == ':' || (digit && !first);
  };
  if (name[0] >= '0' && name[0] <= '9') out += '_';
  for (std::size_t i = 0; i < name.size(); ++i) {
    out += valid(name[i], out.empty()) ? name[i] : '_';
  }
  return out;
}

std::string sanitize_label_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  const auto valid = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    return alpha || c == '_' || (digit && !first);
  };
  if (name[0] >= '0' && name[0] <= '9') out += '_';
  for (std::size_t i = 0; i < name.size(); ++i) {
    out += valid(name[i], out.empty()) ? name[i] : '_';
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels canonical;
  canonical.reserve(labels.size());
  for (const auto& [k, v] : labels) {
    canonical.emplace_back(sanitize_label_name(k), escape_label_value(v));
  }
  std::sort(canonical.begin(), canonical.end());
  std::string out = "{";
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    if (i) out += ",";
    out += canonical[i].first + "=\"" + canonical[i].second + "\"";
  }
  out += "}";
  return out;
}

// ---- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// ---- Gauge ------------------------------------------------------------------

void Gauge::update_max(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (cur < v &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)} {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double v) {
  // First bucket whose upper bound is >= v, i.e. v <= bound ("le").
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[detail::stripe_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sum, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const auto c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  return counter(name, {});
}

Gauge& Registry::gauge(const std::string& name) { return gauge(name, {}); }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  return histogram(name, {}, std::move(bounds));
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[sanitize_metric_name(name)][render_labels(labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[sanitize_metric_name(name)][render_labels(labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> bounds) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[sanitize_metric_name(name)][render_labels(labels)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string Registry::to_json() const {
  const std::scoped_lock lock(mutex_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, series] : counters_) {
    for (const auto& [labels, c] : series) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + detail::json_escape(name + labels) +
             "\": " + std::to_string(c->value());
    }
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, series] : gauges_) {
    for (const auto& [labels, g] : series) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + detail::json_escape(name + labels) +
             "\": " + detail::format_number(g->value());
    }
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, series] : histograms_) {
    for (const auto& [labels, h] : series) {
      if (!first) out += ", ";
      first = false;
      const auto snap = h->snapshot();
      out += "\"" + detail::json_escape(name + labels) + "\": {\"bounds\": [";
      for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
        if (b) out += ", ";
        out += detail::format_number(snap.bounds[b]);
      }
      out += "], \"counts\": [";
      for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        if (b) out += ", ";
        out += std::to_string(snap.counts[b]);
      }
      out += "], \"count\": " + std::to_string(snap.count) +
             ", \"sum\": " + detail::format_number(snap.sum) + "}";
    }
  }
  out += "}}";
  return out;
}

std::string Registry::to_prometheus() const {
  const std::scoped_lock lock(mutex_);
  std::string out;
  for (const auto& [name, series] : counters_) {
    out += "# TYPE " + name + " counter\n";
    for (const auto& [labels, c] : series) {
      out += name + labels + " " + std::to_string(c->value()) + "\n";
    }
  }
  for (const auto& [name, series] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [labels, g] : series) {
      out += name + labels + " " + detail::format_number(g->value()) + "\n";
    }
  }
  for (const auto& [name, series] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [labels, h] : series) {
      const auto snap = h->snapshot();
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
        cumulative += snap.counts[b];
        out += name + "_bucket" +
               detail::with_label(labels, "le=\"" +
                                              detail::format_number(
                                                  snap.bounds[b]) +
                                              "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      out += name + "_bucket" + detail::with_label(labels, "le=\"+Inf\"") +
             " " + std::to_string(snap.count) + "\n";
      out += name + "_sum" + labels + " " + detail::format_number(snap.sum) +
             "\n";
      out += name + "_count" + labels + " " + std::to_string(snap.count) +
             "\n";
    }
  }
  return out;
}

void Registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, series] : counters_)
    for (auto& [labels, c] : series) c->reset();
  for (auto& [name, series] : gauges_)
    for (auto& [labels, g] : series) g->reset();
  for (auto& [name, series] : histograms_)
    for (auto& [labels, h] : series) h->reset();
}

double snapshot_quantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(snap.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    if (snap.counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += snap.counts[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= snap.bounds.size()) {
      // Overflow bucket has no upper edge; the last finite bound is the best
      // defensible answer (Prometheus histogram_quantile convention).
      return snap.bounds.empty() ? 0.0 : snap.bounds.back();
    }
    const double lower = i == 0 ? 0.0 : snap.bounds[i - 1];
    const double upper = snap.bounds[i];
    const double within =
        (rank - before) / static_cast<double>(snap.counts[i]);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

}  // namespace tbd::obs
