#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tbd::obs {

namespace detail {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return mine;
}

void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

namespace {

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace
}  // namespace detail

// ---- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// ---- Gauge ------------------------------------------------------------------

void Gauge::update_max(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (cur < v &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)} {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double v) {
  // First bucket whose upper bound is >= v, i.e. v <= bound ("le").
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[detail::stripe_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sum, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const auto c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string Registry::to_json() const {
  const std::scoped_lock lock(mutex_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + detail::format_number(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    const auto snap = h->snapshot();
    out += "\"" + name + "\": {\"bounds\": [";
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      if (b) out += ", ";
      out += detail::format_number(snap.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      if (b) out += ", ";
      out += std::to_string(snap.counts[b]);
    }
    out += "], \"count\": " + std::to_string(snap.count) +
           ", \"sum\": " + detail::format_number(snap.sum) + "}";
  }
  out += "}}";
  return out;
}

std::string Registry::to_prometheus() const {
  const std::scoped_lock lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + detail::format_number(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const auto snap = h->snapshot();
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      cumulative += snap.counts[b];
      out += name + "_bucket{le=\"" + detail::format_number(snap.bounds[b]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += name + "_sum " + detail::format_number(snap.sum) + "\n";
    out += name + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

void Registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

double snapshot_quantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(snap.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    if (snap.counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += snap.counts[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= snap.bounds.size()) {
      // Overflow bucket has no upper edge; the last finite bound is the best
      // defensible answer (Prometheus histogram_quantile convention).
      return snap.bounds.empty() ? 0.0 : snap.bounds.back();
    }
    const double lower = i == 0 ? 0.0 : snap.bounds[i - 1];
    const double upper = snap.bounds[i];
    const double within =
        (rank - before) / static_cast<double>(snap.counts[i]);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
  }
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

}  // namespace tbd::obs
