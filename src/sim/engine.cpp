#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tbd::sim {

namespace {
// A full experiment keeps a few thousand events in flight (one completion
// per busy server, one think-timer per client, samplers); reserving up
// front keeps the steady state reallocation-free.
constexpr std::size_t kInitialReserve = 4096;
}  // namespace

Engine::Engine() { reserve(kInitialReserve); }

void Engine::reserve(std::size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

EventHandle Engine::schedule_at(TimePoint at, std::function<void()> fn) {
  assert(at >= now_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  heap_.push_back(Entry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++stats_.scheduled;
  if (heap_.size() > stats_.heap_high_water) {
    stats_.heap_high_water = heap_.size();
  }
  return EventHandle{
      (static_cast<std::uint64_t>(slots_[slot].generation) << 32) |
      (slot + 1)};
}

EventHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  assert(delay >= Duration{});
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const auto slot = static_cast<std::uint32_t>(h.id_ & 0xffffffffu) - 1;
  const auto generation = static_cast<std::uint32_t>(h.id_ >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // Generation mismatch = the event already ran (slot freed, possibly
  // reused); the handle is stale and cancelling is a no-op.
  if (s.generation != generation || s.cancelled) return false;
  s.cancelled = true;
  s.fn = nullptr;  // free the closure's captures now, not at pop time
  ++stats_.cancelled;
  return true;
}

void Engine::release_slot(std::uint32_t slot) {
  ++slots_[slot].generation;  // invalidates every outstanding handle
  slots_[slot].cancelled = false;
  free_slots_.push_back(slot);
}

bool Engine::pop_and_run_next(TimePoint limit) {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    if (top.at > limit) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    const bool cancelled = slots_[top.slot].cancelled;
    // Move the callback out before releasing: the slot may be reacquired by
    // a schedule_* call from inside the callback itself.
    std::function<void()> fn = std::move(slots_[top.slot].fn);
    release_slot(top.slot);
    if (cancelled) continue;
    now_ = top.at;
    ++stats_.executed;
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(TimePoint until) {
  assert(until >= now_);
  while (pop_and_run_next(until)) {
  }
  now_ = until;
}

void Engine::run_all() {
  while (pop_and_run_next(TimePoint::max())) {
  }
}

PeriodicTask::PeriodicTask(Engine& engine, TimePoint first, Duration period,
                           std::function<void(TimePoint)> fn)
    : engine_{engine}, period_{period}, fn_{std::move(fn)} {
  assert(period.is_positive());
  // One pointer capture: fits std::function's inline buffer, so every re-arm
  // copies the closure without touching the heap.
  fire_ = [this] {
    if (stopped_) return;
    const TimePoint at = next_at_;
    fn_(at);
    if (!stopped_) arm(at + period_);
  };
  arm(first);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (stopped_) return;
  stopped_ = true;
  engine_.cancel(pending_);
  pending_.invalidate();
}

void PeriodicTask::arm(TimePoint at) {
  next_at_ = at;
  pending_ = engine_.schedule_at(at, fire_);
}

}  // namespace tbd::sim
