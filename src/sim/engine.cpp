#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tbd::sim {

EventHandle Engine::schedule_at(TimePoint at, std::function<void()> fn) {
  assert(at >= now_);
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  return EventHandle{id};
}

EventHandle Engine::schedule_after(Duration delay, std::function<void()> fn) {
  assert(delay >= Duration{});
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Lazy deletion: record the id; the entry is discarded when popped.
  cancelled_.insert(h.id_);
  return true;
}

bool Engine::pop_and_run_next(TimePoint limit) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.at > limit) return false;
    // Purge if cancelled.
    if (const auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // Move the callback out before popping (top() is const; const_cast is
    // safe because we pop immediately and never compare by fn).
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Engine::run_until(TimePoint until) {
  assert(until >= now_);
  while (pop_and_run_next(until)) {
  }
  now_ = until;
}

void Engine::run_all() {
  while (pop_and_run_next(TimePoint::max())) {
  }
}

PeriodicTask::PeriodicTask(Engine& engine, TimePoint first, Duration period,
                           std::function<void(TimePoint)> fn)
    : engine_{engine}, period_{period}, fn_{std::move(fn)} {
  assert(period.is_positive());
  arm(first);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (stopped_) return;
  stopped_ = true;
  engine_.cancel(pending_);
  pending_.invalidate();
}

void PeriodicTask::arm(TimePoint at) {
  pending_ = engine_.schedule_at(at, [this, at] {
    if (stopped_) return;
    fn_(at);
    if (!stopped_) arm(at + period_);
  });
}

}  // namespace tbd::sim
