// Single-threaded discrete-event simulation engine.
//
// The engine owns the virtual clock. Work is scheduled as closures at
// absolute times; ties break in schedule order so runs are deterministic.
// Events can be cancelled via the handle returned by schedule(), which is how
// the processor-sharing servers reschedule their "next completion" event
// whenever arrivals, departures, clock-frequency changes, or GC pauses alter
// the service rate.
//
// Hot-path notes: cancellation is resolved through a slot/generation table
// (an array lookup, no hashing), the binary heap lives in a pre-reserved
// vector, and each Engine is fully self-contained — experiment sweeps run
// one Engine per task on the thread pool with no shared state.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/time.h"

namespace tbd::sim {

/// Opaque identifier for a scheduled event; value-semantic, cheap to copy.
/// Encodes a slot index plus the slot's generation, so a stale handle (event
/// already ran or cancelled, slot possibly reused) is detected by a
/// generation mismatch instead of a hash lookup.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }
  void invalidate() { id_ = 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;  // (generation << 32) | (slot + 1); 0 = empty
};

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` to run after `delay` (must be >= 0).
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already ran, was
  /// already cancelled, or the handle is empty. Safe to call with a stale
  /// handle.
  bool cancel(EventHandle h);

  /// Runs every event with timestamp <= `until` (the clock advances through
  /// each event's timestamp as it executes), then leaves the clock at
  /// exactly `until` — even when the queue drained before reaching it.
  /// Events scheduled after `until` stay pending for a later run.
  void run_until(TimePoint until);

  /// Runs until the event queue is fully drained. The clock ends at the
  /// last executed event's timestamp.
  void run_all();

  /// Grows the event-queue and slot-table reservations to hold at least
  /// `events` concurrently pending events without reallocating.
  void reserve(std::size_t events);

  /// Number of events executed so far (diagnostics / perf tests).
  [[nodiscard]] std::uint64_t events_executed() const { return stats_.executed; }

  /// Number of events currently pending (including cancelled-but-not-popped).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Self-instrumentation counters. Plain members of this single-threaded
  /// engine — maintaining them costs an increment or a compare per
  /// schedule/cancel, identical whether observability export is on or off.
  struct Stats {
    std::uint64_t scheduled = 0;       // schedule_at/schedule_after calls
    std::uint64_t executed = 0;        // callbacks actually run
    std::uint64_t cancelled = 0;       // successful cancel() calls
    std::size_t heap_high_water = 0;   // max concurrently pending entries
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Heap entries are trivially copyable 24-byte records; the callback lives
  // in the slot table, so heap sift operations never touch a std::function.
  struct Entry {
    TimePoint at;
    std::uint64_t seq;   // FIFO tie-break for equal timestamps
    std::uint32_t slot;  // index into slots_
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 0;
    bool cancelled = false;
  };

  bool pop_and_run_next(TimePoint limit);
  void release_slot(std::uint32_t slot);

  std::vector<Entry> heap_;  // binary heap ordered by Later (earliest on top)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  Stats stats_;
};

/// Repeatedly runs a callback at a fixed period, starting at `first`.
/// Used for monitoring samplers (sysstat substitute) and the SpeedStep
/// governor's control loop. Stops automatically when the owning engine's run
/// window ends; call stop() to cease earlier. The firing closure is built
/// once and re-armed by copy (it stays in std::function's inline buffer), so
/// periodic work costs no allocation per period.
class PeriodicTask {
 public:
  /// `fn` receives the firing time.
  PeriodicTask(Engine& engine, TimePoint first, Duration period,
               std::function<void(TimePoint)> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();

 private:
  void arm(TimePoint at);

  Engine& engine_;
  Duration period_;
  std::function<void(TimePoint)> fn_;
  std::function<void()> fire_;  // built once; re-armed without reallocation
  TimePoint next_at_;
  EventHandle pending_;
  bool stopped_ = false;
};

}  // namespace tbd::sim
