// Single-threaded discrete-event simulation engine.
//
// The engine owns the virtual clock. Work is scheduled as closures at
// absolute times; ties break in schedule order so runs are deterministic.
// Events can be cancelled via the handle returned by schedule(), which is how
// the processor-sharing servers reschedule their "next completion" event
// whenever arrivals, departures, clock-frequency changes, or GC pauses alter
// the service rate.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace tbd::sim {

/// Opaque identifier for a scheduled event; value-semantic, cheap to copy.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }
  void invalidate() { id_ = 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t id) : id_{id} {}
  std::uint64_t id_ = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` to run after `delay` (must be >= 0).
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already ran, was
  /// already cancelled, or the handle is empty. Safe to call with a stale
  /// handle.
  bool cancel(EventHandle h);

  /// Runs events until the queue is empty or the clock would pass `until`.
  /// The clock is left at `until` (or at the last event time if the queue
  /// drained first and that was later... it never is; the clock ends at
  /// exactly `until` when events remain, else at the last executed event).
  void run_until(TimePoint until);

  /// Runs until the event queue is fully drained.
  void run_all();

  /// Number of events executed so far (diagnostics / perf tests).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (including cancelled-but-not-popped).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint64_t id;
    // Heap entries are moved, never copied; the callback lives in the entry.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_next(TimePoint limit);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;  // lazy deletion, purged on pop
  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

/// Repeatedly runs a callback at a fixed period, starting at `first`.
/// Used for monitoring samplers (sysstat substitute) and the SpeedStep
/// governor's control loop. Stops automatically when the owning engine's run
/// window ends; call stop() to cease earlier.
class PeriodicTask {
 public:
  /// `fn` receives the firing time.
  PeriodicTask(Engine& engine, TimePoint first, Duration period,
               std::function<void(TimePoint)> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();

 private:
  void arm(TimePoint at);

  Engine& engine_;
  Duration period_;
  std::function<void(TimePoint)> fn_;
  EventHandle pending_;
  bool stopped_ = false;
};

}  // namespace tbd::sim
