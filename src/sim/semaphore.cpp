#include "sim/semaphore.h"

#include <cassert>
#include <utility>

namespace tbd::sim {

FifoSemaphore::FifoSemaphore(Engine& engine, std::string name, int capacity,
                             int max_waiters)
    : engine_{engine},
      name_{std::move(name)},
      capacity_{capacity},
      max_waiters_{max_waiters} {
  assert(capacity > 0);
  free_tokens_.reserve(static_cast<std::size_t>(capacity));
  // Push in reverse so token 0 is on top of the LIFO free list.
  for (int i = capacity - 1; i >= 0; --i) free_tokens_.push_back(i);
}

bool FifoSemaphore::acquire(std::function<void(int)> on_acquire) {
  if (!free_tokens_.empty()) {
    const int token = free_tokens_.back();
    free_tokens_.pop_back();
    grant(token, std::move(on_acquire));
    return true;
  }
  if (max_waiters_ >= 0 && static_cast<int>(waiters_.size()) >= max_waiters_) {
    ++rejected_;
    return false;
  }
  waiters_.push_back(std::move(on_acquire));
  return true;
}

void FifoSemaphore::release(int token_id) {
  assert(token_id >= 0 && token_id < capacity_);
  assert(in_use_ > 0);
  --in_use_;
  if (!waiters_.empty()) {
    auto cb = std::move(waiters_.front());
    waiters_.pop_front();
    grant(token_id, std::move(cb));
    return;
  }
  free_tokens_.push_back(token_id);
}

void FifoSemaphore::grant(int token_id, std::function<void(int)> cb) {
  ++in_use_;
  ++granted_;
  engine_.schedule_after(Duration{}, [cb = std::move(cb), token_id] { cb(token_id); });
}

}  // namespace tbd::sim
