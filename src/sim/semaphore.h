// FIFO counting semaphore for the simulated world.
//
// Models bounded soft resources: worker-thread pools and inter-tier
// connection pools. Waiters queue in arrival order; a released token wakes
// the head waiter via an engine event at the current simulation time (so a
// release never runs the waiter's continuation re-entrantly).
//
// Each token carries a stable small-integer id. Connection pools expose the
// id as the "connection" observable in wire messages: the black-box trace
// reconstructor (SysViz substitute) keys request/response matching on it,
// exactly as a real sniffer keys on the TCP 5-tuple.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace tbd::sim {

class FifoSemaphore {
 public:
  /// `capacity` tokens, ids 0..capacity-1. `max_waiters` < 0 means unbounded.
  FifoSemaphore(Engine& engine, std::string name, int capacity,
                int max_waiters = -1);

  /// Requests a token. If one is free, `on_acquire(token_id)` is scheduled
  /// immediately (at now, not re-entrantly). If all tokens are held the
  /// caller queues; returns false (and drops the callback) only when the
  /// waiting line is already at max_waiters — the "accept queue full" case
  /// that models SYN drops at a saturated web tier.
  bool acquire(std::function<void(int)> on_acquire);

  /// Returns a token; wakes the head waiter if any.
  void release(int token_id);

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int in_use() const { return in_use_; }
  [[nodiscard]] int waiting() const { return static_cast<int>(waiters_.size()); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total acquisitions granted and total rejected (diagnostics).
  [[nodiscard]] std::uint64_t granted() const { return granted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  void grant(int token_id, std::function<void(int)> cb);

  Engine& engine_;
  std::string name_;
  int capacity_;
  int max_waiters_;
  int in_use_ = 0;
  std::vector<int> free_tokens_;  // LIFO free list: reuses hot connections
  std::deque<std::function<void(int)>> waiters_;
  std::uint64_t granted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace tbd::sim
