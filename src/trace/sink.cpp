#include "trace/sink.h"

#include <cassert>

namespace tbd::trace {

TraceSink::TraceSink(std::uint32_t num_servers, bool record_messages)
    : record_messages_{record_messages}, logs_(num_servers), net_(num_servers) {}

void TraceSink::capture(const Message& m) {
  ++seen_;
  bytes_seen_ += m.bytes;
  // Maintain per-server byte counters. Node ids are 1-based for servers.
  if (m.dst >= 1 && m.dst <= net_.size()) {
    net_[m.dst - 1].bytes_received += m.bytes;
  }
  if (m.src >= 1 && m.src <= net_.size()) {
    net_[m.src - 1].bytes_sent += m.bytes;
  }
  if (record_messages_) {
    messages_.push_back(m);
  } else {
    ++dropped_;
  }
}

void TraceSink::record_visit(const RequestRecord& r) {
  assert(r.server < logs_.size());
  assert(r.departure >= r.arrival);
  logs_[r.server].push_back(r);
}

void TraceSink::clear() {
  messages_.clear();
  for (auto& log : logs_) log.clear();
  for (auto& n : net_) n = NetCounters{};
  seen_ = 0;
  bytes_seen_ = 0;
  dropped_ = 0;
}

}  // namespace tbd::trace
