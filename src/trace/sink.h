// Capture sink: the simulated network tap.
//
// Every inter-tier message in the simulation is offered to the sink, which
// plays the role of the paper's mirror-port + SysViz capture box. It keeps
// (a) the raw message stream for the black-box reconstructor and
// (b) per-server request logs (arrival/departure pairs) for the analysis
// pipeline, plus running byte counters per server for Table I.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/records.h"

namespace tbd::trace {

/// Per-server network byte counters (receive / send), for Table I.
struct NetCounters {
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
};

class TraceSink {
 public:
  /// `num_servers`: servers are nodes 1..num_servers (node 0 = clients).
  /// `record_messages`: keeping the full message stream costs memory
  /// (~56 B/message); disable for long sweep runs that only need request
  /// logs.
  explicit TraceSink(std::uint32_t num_servers, bool record_messages = false);

  /// Called by the network layer for every message put on the wire.
  void capture(const Message& m);

  /// Called when a server emits its response for a request, closing the
  /// server visit. (The simulator calls this alongside capturing the
  /// response message so request logs exist even when message recording is
  /// off.)
  void record_visit(const RequestRecord& r);

  [[nodiscard]] const std::vector<Message>& messages() const { return messages_; }
  [[nodiscard]] const RequestLog& server_log(ServerIndex s) const {
    return logs_[s];
  }
  [[nodiscard]] std::uint32_t num_servers() const {
    return static_cast<std::uint32_t>(logs_.size());
  }
  [[nodiscard]] const NetCounters& net_counters(ServerIndex s) const {
    return net_[s];
  }
  [[nodiscard]] std::uint64_t total_messages_seen() const { return seen_; }
  /// Total wire bytes across all captured messages.
  [[nodiscard]] std::uint64_t total_bytes_seen() const { return bytes_seen_; }
  /// Messages offered while message recording was off (counted, not kept).
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

  /// Resets ALL captured state — message stream, request logs, per-server
  /// net counters, and the seen/bytes/dropped totals — keeping only the
  /// configuration (num_servers, record_messages). Windowed experiments call
  /// this between analysis windows, and a window's Table-I byte counts must
  /// cover that window only, so the counters reset together with the logs
  /// (pinned by TraceSinkTest.ClearResetsCountersAndData).
  void clear();

 private:
  bool record_messages_;
  std::vector<Message> messages_;
  std::vector<RequestLog> logs_;
  std::vector<NetCounters> net_;
  std::uint64_t seen_ = 0;
  std::uint64_t bytes_seen_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace tbd::trace
