// Request-log persistence: CSV import/export of per-server request records.
//
// The analysis pipeline (src/core) consumes only RequestRecords, so traces
// captured outside the simulator — e.g. derived from a real pcap with any
// request/response matcher — can be analyzed by writing them in this format:
//
//   server,class,arrival_us,departure_us,txn
//   0,3,1000,2500,42
//
// Header line optional. Extra columns are ignored. Lines starting with '#'
// are comments.
//
// Two readers share these semantics exactly:
//  * load_request_log_csv — the reference sequential loader (getline loop).
//  * load_request_log_csv_sharded — the fast path: one block read, the
//    buffer split at newline boundaries into per-thread shards parsed
//    zero-copy (std::from_chars straight off the file buffer) on the shared
//    pool. Output is byte-identical to the sequential loader at any shard
//    count / TBD_THREADS (shards partition whole lines in file order).
//
// load_request_log is the front door used by the tools: it sniffs the
// "TBDR" magic and dispatches to the binary reader (request_log_file.h) or
// the sharded CSV path.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::trace {

struct LogIoResult {
  RequestLog records;
  std::size_t skipped_lines = 0;  // malformed or comment lines
  bool ok = false;                // file opened and at least parsed
  std::string error;              // why ok is false (empty when ok)
  /// Non-fatal diagnostics from a load that still succeeded: today this is
  /// TBDR v2 crash recovery ("recovered N sealed segments; dropped tail:
  /// ..."), where a truncated tail costs at most one unsealed segment
  /// (segment_log.h). Empty otherwise; tools print it to stderr.
  std::string warning;
  /// 1-based number of the first malformed line (comment lines and a
  /// recognized "server,..." header are not malformed); 0 = none.
  std::size_t first_bad_line = 0;
  /// The malformed line's text, truncated to a preview-sized prefix.
  std::string first_bad_text;
};

/// Reads a request log from `path`. Records for all servers may be mixed;
/// filter by RequestRecord::server downstream.
[[nodiscard]] LogIoResult load_request_log_csv(const std::string& path);

/// Sharded zero-copy variant: identical result for any `shards`; <= 0
/// resolves to the shared pool's width (capped so shards stay block-sized).
[[nodiscard]] LogIoResult load_request_log_csv_sharded(const std::string& path,
                                                       int shards = 0);

/// The sharded parser on an in-memory buffer (the file loaders map the file
/// and call this). Identical classification to the sequential loader;
/// identical result for any `shards`. ok is always true.
[[nodiscard]] LogIoResult parse_request_log_csv(std::string_view text,
                                                int shards = 0);

/// The exact byte string save_request_log_csv writes (header included).
[[nodiscard]] std::string request_log_to_csv(const RequestLog& records);

/// Loads a request log of either encoding: binary when `path` carries the
/// "TBDR" magic (see request_log_file.h), sharded CSV otherwise.
[[nodiscard]] LogIoResult load_request_log(const std::string& path);

/// Columnar twin of LogIoResult: identical diagnostics, records in SoA
/// layout. The loaders classify lines through the same code as the row
/// loaders, so records.to_records() equals the row loader's records and all
/// error fields match byte-for-byte.
struct ColumnarLogIoResult {
  RequestColumns records;
  std::size_t skipped_lines = 0;
  bool ok = false;
  std::string error;
  std::string warning;  // non-fatal diagnostics; see LogIoResult::warning
  std::size_t first_bad_line = 0;
  std::string first_bad_text;
};

/// Sharded CSV parse straight into columns (no intermediate row log).
[[nodiscard]] ColumnarLogIoResult parse_request_log_csv_columns(
    std::string_view text, int shards = 0);

/// Sharded CSV file load straight into columns.
[[nodiscard]] ColumnarLogIoResult load_request_log_csv_sharded_columns(
    const std::string& path, int shards = 0);

/// Columnar front door: TBDR or CSV by magic sniff, decoded into columns at
/// the ingest boundary — the analysis core then never sees rows.
[[nodiscard]] ColumnarLogIoResult load_request_log_columns(
    const std::string& path);

/// Writes records (with header) to `path`; returns false on I/O failure.
bool save_request_log_csv(const std::string& path, const RequestLog& records);

}  // namespace tbd::trace
