// Request-log persistence: CSV import/export of per-server request records.
//
// The analysis pipeline (src/core) consumes only RequestRecords, so traces
// captured outside the simulator — e.g. derived from a real pcap with any
// request/response matcher — can be analyzed by writing them in this format:
//
//   server,class,arrival_us,departure_us,txn
//   0,3,1000,2500,42
//
// Header line optional. Extra columns are ignored. Lines starting with '#'
// are comments.
#pragma once

#include <string>
#include <vector>

#include "trace/records.h"

namespace tbd::trace {

struct LogIoResult {
  RequestLog records;
  std::size_t skipped_lines = 0;  // malformed or comment lines
  bool ok = false;                // file opened and at least parsed
};

/// Reads a request log from `path`. Records for all servers may be mixed;
/// filter by RequestRecord::server downstream.
[[nodiscard]] LogIoResult load_request_log_csv(const std::string& path);

/// Writes records (with header) to `path`; returns false on I/O failure.
bool save_request_log_csv(const std::string& path, const RequestLog& records);

}  // namespace tbd::trace
