// Binary request logs: the fast interchange format for analysis input.
//
// CSV request logs (log_io.h) are the human- and pipeline-friendly
// interface, but at production trace volumes (hundreds of millions of
// records) text parsing dominates the analysis front door. This format is
// the sibling of capture_file.h's "TBDC" message stream, one level up the
// pipeline: it carries the per-server arrival/departure RequestRecords the
// detectors consume, about 10x faster to load than CSV.
//
// Layout (little-endian):
//   header: "TBDR" u32-version(1) u64-record-count
//   per record: u32 server, u32 class_id, i64 arrival_us, i64 departure_us,
//               u64 txn                                  (32 bytes, packed)
//
// Readers validate magic, version, and that the header count matches the
// file size exactly before allocating anything, so a corrupt header can
// neither over-allocate nor over-read.
#pragma once

#include <string>
#include <string_view>

#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::trace {

struct RequestLogReadResult {
  RequestLog records;
  bool ok = false;
  /// Stable short code (e.g. "bad magic"); empty when ok. The fields below
  /// locate the failure — CSV loads report first_bad_line/first_bad_text,
  /// and binary loads report the equivalent byte/record coordinates.
  std::string error;
  /// Byte offset of the validation failure: end of the available data for
  /// truncation, the offending header field otherwise, the first surplus
  /// byte for a count/size disagreement. 0 when ok.
  std::size_t error_offset = 0;
  /// Record index where decoding could not continue (truncation: the first
  /// incomplete record; surplus bytes: the header count). 0 when the error
  /// is not record-level.
  std::uint64_t error_record = 0;
  /// Raw record count claimed by the header (0 if the header never parsed).
  std::uint64_t header_count = 0;
  /// Total input size in bytes (0 only when the file could not be opened).
  std::size_t input_size = 0;
};

/// Writes the records; returns false on I/O failure.
bool save_request_log_bin(const std::string& path, const RequestLog& records);

/// The exact byte string save_request_log_bin writes, in memory.
[[nodiscard]] std::string encode_request_log_bin(const RequestLog& records);

/// Decodes a TBDR byte buffer; validates magic, version, and count against
/// the buffer size before allocating anything. Decoding fans out over the
/// shared pool in order-preserving chunks.
[[nodiscard]] RequestLogReadResult decode_request_log_bin(
    std::string_view bytes);

/// Reads a binary request log back: maps the file and decodes it.
[[nodiscard]] RequestLogReadResult load_request_log_bin(
    const std::string& path);

/// Columnar twin of RequestLogReadResult: the decoder transposes the wire's
/// row-major records straight into column vectors (the one AoS->SoA
/// conversion of the whole pipeline happens here, inside the decode chunks).
/// Diagnostics fields mean exactly what they do on RequestLogReadResult —
/// both decoders validate through the same header check, so the error
/// strings and coordinates cannot drift.
struct RequestColumnsReadResult {
  RequestColumns records;
  bool ok = false;
  std::string error;
  std::size_t error_offset = 0;
  std::uint64_t error_record = 0;
  std::uint64_t header_count = 0;
  std::size_t input_size = 0;
};

/// Decodes a TBDR byte buffer into columns; same validation and fan-out as
/// decode_request_log_bin, and records.to_records() equals the row decode.
[[nodiscard]] RequestColumnsReadResult decode_request_log_bin_columns(
    std::string_view bytes);

/// Reads a binary request log into columns: maps the file and decodes it.
[[nodiscard]] RequestColumnsReadResult load_request_log_bin_columns(
    const std::string& path);

/// True when `path` exists and begins with the "TBDR" magic.
[[nodiscard]] bool sniff_request_log_bin(const std::string& path);

/// Format version of a "TBDR"-magic file: 0 when the file is missing or the
/// magic does not match; otherwise the header's u32 version field (1 when the
/// version bytes themselves are truncated, so such stubs still route to the
/// v1 decoder and get its "truncated header" diagnostics). The front doors
/// dispatch on this: 2 -> segment_log.h, anything else -> the v1 decoder,
/// which reports "unsupported version" for versions it does not know.
[[nodiscard]] std::uint32_t sniff_request_log_version(const std::string& path);

}  // namespace tbd::trace
