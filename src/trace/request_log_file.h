// Binary request logs: the fast interchange format for analysis input.
//
// CSV request logs (log_io.h) are the human- and pipeline-friendly
// interface, but at production trace volumes (hundreds of millions of
// records) text parsing dominates the analysis front door. This format is
// the sibling of capture_file.h's "TBDC" message stream, one level up the
// pipeline: it carries the per-server arrival/departure RequestRecords the
// detectors consume, about 10x faster to load than CSV.
//
// Layout (little-endian):
//   header: "TBDR" u32-version(1) u64-record-count
//   per record: u32 server, u32 class_id, i64 arrival_us, i64 departure_us,
//               u64 txn                                  (32 bytes, packed)
//
// Readers validate magic, version, and that the header count matches the
// file size exactly before allocating anything, so a corrupt header can
// neither over-allocate nor over-read.
#pragma once

#include <string>

#include "trace/records.h"

namespace tbd::trace {

struct RequestLogReadResult {
  RequestLog records;
  bool ok = false;
  std::string error;  // empty when ok
};

/// Writes the records; returns false on I/O failure.
bool save_request_log_bin(const std::string& path, const RequestLog& records);

/// Reads a binary request log back; validates magic, version, and count
/// against the file size. Decoding fans out over the shared pool in
/// order-preserving chunks.
[[nodiscard]] RequestLogReadResult load_request_log_bin(
    const std::string& path);

/// True when `path` exists and begins with the "TBDR" magic.
[[nodiscard]] bool sniff_request_log_bin(const std::string& path);

}  // namespace tbd::trace
