// Binary capture files: compact persistence for wire-level message streams.
//
// CSV request logs (log_io.h) carry the per-server arrival/departure view;
// this format carries the RAW message stream — what a tap actually records —
// so reconstruction can be re-run offline, shared, and regression-tested.
// Think "pcap-lite": fixed little-endian records behind a magic/version
// header, streamable in either direction.
//
// Layout (little-endian):
//   header: "TBDC" u32-version(1) u64-message-count
//   per message: i64 at_us, u32 src, u32 dst, u32 conn, u8 kind,
//                u32 class_id, u32 bytes, u64 txn, u64 visit,
//                u64 parent_visit                (53 bytes, packed)
//
// Ground-truth ids are included so accuracy scoring works offline; a real
// capture would zero them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/records.h"

namespace tbd::trace {

struct CaptureReadResult {
  std::vector<Message> messages;
  bool ok = false;
  std::string error;  // empty when ok
};

/// Writes the stream; returns false on I/O failure.
bool save_capture(const std::string& path, const std::vector<Message>& messages);

/// Reads a capture file back; validates magic, version, and that the header
/// count agrees with the file size (before allocating anything).
[[nodiscard]] CaptureReadResult load_capture(const std::string& path);

}  // namespace tbd::trace
