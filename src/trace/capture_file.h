// Binary capture files: compact persistence for wire-level message streams.
//
// CSV request logs (log_io.h) carry the per-server arrival/departure view;
// this format carries the RAW message stream — what a tap actually records —
// so reconstruction can be re-run offline, shared, and regression-tested.
// Think "pcap-lite": fixed little-endian records behind a magic/version
// header, streamable in either direction.
//
// Layout (little-endian):
//   header: "TBDC" u32-version(1) u64-message-count
//   per message: i64 at_us, u32 src, u32 dst, u32 conn, u8 kind,
//                u32 class_id, u32 bytes, u64 txn, u64 visit,
//                u64 parent_visit                (53 bytes, packed)
//
// Ground-truth ids are included so accuracy scoring works offline; a real
// capture would zero them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/records.h"

namespace tbd::trace {

struct CaptureReadResult {
  std::vector<Message> messages;
  bool ok = false;
  /// Stable short code (e.g. "bad magic"); empty when ok. The coordinates
  /// below mirror RequestLogReadResult's binary-error diagnostics.
  std::string error;
  /// Byte offset of the validation failure (see RequestLogReadResult).
  std::size_t error_offset = 0;
  /// Message index where decoding could not continue; 0 when not
  /// message-level.
  std::uint64_t error_record = 0;
  /// Raw message count claimed by the header (0 if it never parsed).
  std::uint64_t header_count = 0;
  /// Total input size in bytes (0 only when the file could not be opened).
  std::size_t input_size = 0;
};

/// Writes the stream; returns false on I/O failure.
bool save_capture(const std::string& path, const std::vector<Message>& messages);

/// The exact byte string save_capture writes, in memory.
[[nodiscard]] std::string encode_capture(const std::vector<Message>& messages);

/// Decodes a TBDC byte buffer; validates magic, version, and that the header
/// count agrees with the buffer size (before allocating anything).
[[nodiscard]] CaptureReadResult decode_capture(std::string_view bytes);

/// Reads a capture file back: maps the file and decodes it.
[[nodiscard]] CaptureReadResult load_capture(const std::string& path);

}  // namespace tbd::trace
