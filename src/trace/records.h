// Wire-level observables produced by passive network tracing.
//
// The paper's monitoring substrate (Fujitsu SysViz, Section II-C) captures
// every inter-tier message through network taps, timestamps it at microsecond
// granularity on a dedicated machine (one clock => no NTP skew), and
// reconstructs each transaction's execution trace. Two views come out of it:
//
//  * Message   — one captured packet-level interaction message (odd-numbered
//                arrows in Figure 4). The black-box reconstructor sees only
//                the fields a sniffer could see; ground-truth ids are carried
//                alongside for accuracy scoring but are never consulted by
//                the reconstruction algorithm.
//  * RequestRecord — one request's visit to one server: arrival timestamp of
//                the request message and departure timestamp of the matching
//                response (the paper's per-server arrival/departure pairs
//                that feed load and throughput calculation, Section III).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace tbd::trace {

/// Network endpoint id. Node 0 is the client population; servers are 1..N.
using NodeId = std::uint32_t;

/// Index of a server within the topology (dense, 0-based).
using ServerIndex = std::uint32_t;

/// Ground-truth end-to-end transaction id.
using TxnId = std::uint64_t;

/// Request class (interaction type); observable on the wire in practice
/// (URL / SQL template), so the reconstructor may use it.
using ClassId = std::uint32_t;

enum class MessageKind : std::uint8_t { kRequest, kResponse };

struct Message {
  TimePoint at;        // capture timestamp
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t conn = 0;  // connection id (TCP 5-tuple stand-in)
  MessageKind kind = MessageKind::kRequest;
  ClassId class_id = 0;
  std::uint32_t bytes = 0;
  // --- ground truth, hidden from the black-box reconstructor ---
  TxnId txn = 0;
  std::uint64_t visit = 0;  // unique id of the server-visit this message opens/closes
  std::uint64_t parent_visit = 0;  // visit id of the caller's visit (0 = client root)
};

/// One request's stay at one server, from request arrival to response
/// departure. The interval [arrival, departure] is exactly what the load
/// calculation integrates (Figure 6); `departure` places the request's
/// completed work units into a throughput interval (Figure 7).
struct RequestRecord {
  ServerIndex server = 0;
  ClassId class_id = 0;
  TimePoint arrival;
  TimePoint departure;
  TxnId txn = 0;
};

/// All records of one server, in departure order (the order they are emitted
/// by the simulation). Analysis code sorts as needed.
using RequestLog = std::vector<RequestRecord>;

}  // namespace tbd::trace
