// Per-transaction causal trees: the flight-recorder view of a request.
//
// The detector (src/core) answers "WHEN was a server congested"; this module
// answers "WHERE did one slow transaction spend its time". Input is either
// the per-server request logs (ground truth: records sharing a txn id nest
// by time containment) or the black-box reconstructor's visits — mirroring
// the reconstructor's two views. Output per transaction:
//
//  * the visit tree (which downstream call belongs to which parent visit),
//  * a queue-wait vs service split of every visit's self time, derived from
//    the server's concurrency profile under the processor-sharing model the
//    reconstructor already assumes: with k requests open, dt of dwell is
//    dt/k service and dt*(k-1)/k queueing,
//  * the critical path — at every instant of the transaction's response
//    time, the deepest active visit (the one not waiting on a child). Its
//    segments tile [root arrival, root departure], so summing them
//    decomposes end-to-end latency exactly; core/attribution.h aggregates
//    that decomposition per percentile band against detected episodes.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "trace/reconstructor.h"
#include "trace/records.h"
#include "util/time.h"

namespace tbd::trace {

/// Step function of a server's concurrency over time with prefix integrals
/// of the processor-sharing weights, so any [t0, t1] splits into queue-wait
/// and service in O(log breakpoints). Built once per server from all of its
/// records; visits then query their own sub-intervals.
class ConcurrencyProfile {
 public:
  ConcurrencyProfile() = default;

  /// `records` need not be sorted; only entries of one server belong here.
  [[nodiscard]] static ConcurrencyProfile build(
      std::span<const RequestRecord> records);

  /// Concurrency on the piece containing `t` (arrivals at exactly `t`
  /// included); 0 outside the profiled range.
  [[nodiscard]] int concurrency_at(TimePoint t) const;

  struct Split {
    double queue_us = 0.0;    // integral of (k-1)/k over [t0, t1]
    double service_us = 0.0;  // integral of 1/k over [t0, t1]
  };
  /// Split of [t0, t1]; the two parts sum to the busy time of the range
  /// (pieces with k = 0 contribute to neither).
  [[nodiscard]] Split split(TimePoint t0, TimePoint t1) const;

  [[nodiscard]] bool empty() const { return times_.empty(); }

 private:
  std::vector<std::int64_t> times_;  // breakpoints, ascending (us)
  std::vector<int> k_;               // concurrency on [times_[i], times_[i+1])
  std::vector<double> queue_us_;     // prefix integral of (k-1)/k at times_[i]
  std::vector<double> service_us_;   // prefix integral of 1/k at times_[i]
};

/// Per-server profiles, keyed by dense server index.
using ProfileMap = std::map<ServerIndex, ConcurrencyProfile>;

/// Profiles for every server appearing in a merged record set.
[[nodiscard]] ProfileMap build_profiles(std::span<const RequestRecord> records);

/// One visit within a transaction tree.
struct TxnVisit {
  ServerIndex server = 0;
  ClassId class_id = 0;
  TimePoint arrival;
  TimePoint departure;
  std::int32_t parent = -1;  // index into TxnTree::visits; -1 = root
  std::vector<std::int32_t> children;  // in arrival order
  std::int32_t depth = 0;              // 0 = root
  /// Requests already open at this server when the visit arrived (the queue
  /// it joined; excludes the visit itself).
  int concurrency_at_arrival = 0;
  /// Processor-sharing split of the visit's SELF time (dwell minus time
  /// covered by child visits). Time spent waiting on a child is attributed
  /// to the child, not counted here.
  double queue_us = 0.0;
  double service_us = 0.0;
  /// True when the visit's parent could not be resolved (parent never
  /// closed, or containment broken); the visit is kept as an extra root.
  bool orphan = false;
};

/// One critical-path piece: `visit` was the deepest active visit on
/// [start, end).
struct PathSegment {
  std::int32_t visit = -1;
  TimePoint start;
  TimePoint end;
};

struct TxnTree {
  TxnId id = 0;
  std::vector<TxnVisit> visits;  // pre-order; visits[0] is the first root
  /// Chronological, tiles [first arrival, last root departure] of each root.
  std::vector<PathSegment> critical_path;
  /// End-to-end response time: last root departure minus first root arrival.
  [[nodiscard]] Duration latency() const;
  /// Server owning the largest share of the critical path.
  [[nodiscard]] ServerIndex critical_server() const;
};

struct TxnAssembly {
  std::vector<TxnTree> txns;  // ordered by (first arrival, txn id)
  std::uint64_t visits = 0;            // visits placed into trees
  std::uint64_t orphan_visits = 0;     // kept, but parent unresolved
  std::uint64_t dropped_unclosed = 0;  // visits with no observed departure
};

/// Ground-truth assembly from request records: records sharing a txn id form
/// one tree, nested by time containment (a visit's parent is the innermost
/// same-transaction visit enclosing it). When `profiles` is null they are
/// built internally from `records`.
[[nodiscard]] TxnAssembly assemble_transactions(
    std::span<const RequestRecord> records,
    const ProfileMap* profiles = nullptr);

/// Which parent edges of ReconstructedVisit to trust.
enum class VisitView : std::uint8_t {
  kBlackBox,     // ReconstructedVisit::parent (the reconstructor's guess)
  kGroundTruth,  // truth_parent_visit / truth_txn carried from the capture
};

/// Assembly from reconstructor output. Visits whose departure was never
/// observed are dropped (counted in dropped_unclosed); their children become
/// orphan roots. Node ids are mapped to dense server indices (node 1 ->
/// server 0), matching request-log analysis.
[[nodiscard]] TxnAssembly assemble_transactions(
    std::span<const ReconstructedVisit> visits, VisitView view,
    const ProfileMap* profiles = nullptr);

/// Per-server request logs derived from closed reconstructed visits (node 1
/// -> server 0), for feeding the detection pipeline from a capture file.
[[nodiscard]] std::map<ServerIndex, RequestLog> logs_from_visits(
    std::span<const ReconstructedVisit> visits);

}  // namespace tbd::trace
