#include "trace/reconstructor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "obs/span.h"

namespace tbd::trace {

namespace {
// Departure sentinel for visits whose response has not been seen yet.
constexpr TimePoint kUnclosed = TimePoint::max();
}  // namespace

void TraceReconstructor::process(std::span<const Message> messages) {
  TBD_SPAN("trace.reconstruct");
  for (const Message& m : messages) {
    if (m.conn >= conn_pending_.size()) conn_pending_.resize(m.conn + 1);
    if (const NodeId hi = std::max(m.src, m.dst); hi >= open_by_server_.size()) {
      open_by_server_.resize(hi + 1);
    }

    if (m.kind == MessageKind::kRequest) {
      std::int64_t parent_slot = -1;
      if (m.src != client_node_) {
        parent_slot = pick_parent(m.src, m.at, m.class_id);
        if (parent_slot < 0) {
          ++stats_.orphan_children;
        } else {
          // Train the elapsed model on the accepted attribution, normalized
          // by the same processor-sharing stretch used when scoring.
          OpenVisit& chosen = open_[static_cast<std::size_t>(parent_slot)];
          const auto& pv = visits_[static_cast<std::size_t>(chosen.index)];
          const double stretch = std::max<double>(
              1.0, static_cast<double>(open_by_server_[m.src].size()));
          learn_elapsed(
              m.src, pv.class_id,
              static_cast<double>((m.at - chosen.ready_since).micros()) / stretch);
          ++chosen.children_issued;
        }
      } else {
        ++stats_.roots;
      }

      const auto visit_index = static_cast<std::int64_t>(visits_.size());
      visits_.push_back(ReconstructedVisit{
          .server = m.dst,
          .class_id = m.class_id,
          .arrival = m.at,
          .departure = kUnclosed,
          .parent = parent_slot >= 0
                        ? open_[static_cast<std::size_t>(parent_slot)].index
                        : -1,
          .truth_txn = m.txn,
          .truth_visit = m.visit,
          .truth_parent_visit = m.parent_visit,
      });

      const auto slot = static_cast<std::int64_t>(open_.size());
      open_.push_back(OpenVisit{
          .index = visit_index,
          .server = m.dst,
          .parent_slot = parent_slot,
          .outstanding_child = -1,
          .ready_since = m.at,
          .closed = false,
      });
      open_by_server_[m.dst].push_back(slot);

      if (parent_slot >= 0) {
        // The parent is busy waiting on this child until its response.
        open_[static_cast<std::size_t>(parent_slot)].outstanding_child = visit_index;
      }

      // One outstanding request per connection: a second request on a
      // connection with an un-answered one would be a capture glitch; the
      // newer request wins and the old pending entry is dropped.
      conn_pending_[m.conn] = PendingRequest{slot};
      continue;
    }

    // Response: close the visit pending on this connection.
    auto& pending = conn_pending_[m.conn];
    if (!pending.has_value()) {
      ++stats_.unmatched_responses;
      continue;
    }
    const std::int64_t slot = pending->open_slot;
    pending.reset();
    OpenVisit& ov = open_[static_cast<std::size_t>(slot)];
    ov.closed = true;
    ReconstructedVisit& v = visits_[static_cast<std::size_t>(ov.index)];
    v.departure = m.at;
    ++stats_.visits;

    // Train the fanout model: this visit issued `children_issued` calls.
    {
      constexpr double kAlpha = 0.05;
      double& q = fanout_model(v.server, v.class_id);
      const auto n = static_cast<double>(ov.children_issued);
      q = q < 0.0 ? n : (1.0 - kAlpha) * q + kAlpha * n;
    }

    // Remove from the per-server open list (swap-erase).
    auto& list = open_by_server_[v.server];
    if (const auto it = std::find(list.begin(), list.end(), slot); it != list.end()) {
      *it = list.back();
      list.pop_back();
    }

    // The parent becomes ready again: its sequential processing resumes.
    if (ov.parent_slot >= 0) {
      OpenVisit& pov = open_[static_cast<std::size_t>(ov.parent_slot)];
      if (!pov.closed) {
        if (pov.outstanding_child == ov.index) pov.outstanding_child = -1;
        pov.ready_since = m.at;
      }
    }
  }
}

double& TraceReconstructor::elapsed_model(NodeId node, ClassId cls) {
  if (node >= elapsed_mu_.size()) elapsed_mu_.resize(node + 1);
  auto& per_class = elapsed_mu_[node];
  if (cls >= per_class.size()) per_class.resize(cls + 1, -1.0);
  return per_class[cls];
}

void TraceReconstructor::learn_elapsed(NodeId node, ClassId cls,
                                       double elapsed_us) {
  constexpr double kAlpha = 0.05;
  double& mu = elapsed_model(node, cls);
  mu = mu < 0.0 ? elapsed_us : (1.0 - kAlpha) * mu + kAlpha * elapsed_us;
  global_elapsed_mu_ = global_elapsed_mu_ < 0.0
                           ? elapsed_us
                           : (1.0 - kAlpha) * global_elapsed_mu_ +
                                 kAlpha * elapsed_us;
}

double& TraceReconstructor::fanout_model(NodeId node, ClassId cls) {
  if (node >= fanout_mu_.size()) fanout_mu_.resize(node + 1);
  auto& per_class = fanout_mu_[node];
  if (cls >= per_class.size()) per_class.resize(cls + 1, -1.0);
  return per_class[cls];
}

std::int64_t TraceReconstructor::pick_parent(NodeId server, TimePoint at,
                                             ClassId cls) {
  if (server >= open_by_server_.size()) return -1;
  const auto& list = open_by_server_[server];

  // Candidate filters, strongest first:
  //  - open, ready (no outstanding call), already arrived;
  //  - same request class as the child message (content-derived signal);
  //  - fanout: a parent that already issued its class's typical number of
  //    child calls is done querying. The fanout filter is soft — when it
  //    would eliminate everyone, it is dropped.
  std::vector<std::int64_t> candidates;
  std::vector<std::int64_t> unsaturated;
  for (const std::int64_t slot : list) {
    const OpenVisit& ov = open_[static_cast<std::size_t>(slot)];
    if (ov.closed || ov.outstanding_child >= 0) continue;
    const ReconstructedVisit& v = visits_[static_cast<std::size_t>(ov.index)];
    if (v.arrival > at || v.class_id != cls) continue;
    candidates.push_back(slot);
    const double q = fanout_model(server, cls);
    if (q < 0.0 || static_cast<double>(ov.children_issued) < std::round(q)) {
      unsaturated.push_back(slot);
    }
  }
  const auto& pool = unsaturated.empty() ? candidates : unsaturated;
  if (pool.empty()) return -1;

  // Processor sharing stretches every in-service segment by roughly the
  // number of concurrently open visits; normalizing observed elapsed times
  // by it keeps the learned model valid across load levels.
  const double stretch = std::max<double>(1.0, static_cast<double>(list.size()));

  std::int64_t best_slot = -1;
  TimePoint best_ready;
  double best_score = 0.0;
  for (const std::int64_t slot : pool) {
    const OpenVisit& ov = open_[static_cast<std::size_t>(slot)];
    if (policy_ == ParentPick::kExpectedElapsed) {
      const double elapsed =
          static_cast<double>((at - ov.ready_since).micros()) / stretch;
      double mu = elapsed_model(server, cls);
      if (mu < 0.0) mu = global_elapsed_mu_;
      // No model yet (cold start): fall back to FIFO by scoring on the
      // negated elapsed time.
      const double score = mu < 0.0 ? -elapsed : std::abs(elapsed - mu);
      if (best_slot < 0 || score < best_score) {
        best_slot = slot;
        best_score = score;
      }
      continue;
    }
    const bool better = policy_ == ParentPick::kMostRecentlyReady
                            ? ov.ready_since > best_ready
                            : ov.ready_since < best_ready;
    if (best_slot < 0 || better) {
      best_slot = slot;
      best_ready = ov.ready_since;
    }
  }
  return best_slot;
}

AccuracyReport TraceReconstructor::score_against_truth() const {
  AccuracyReport report;
  std::unordered_map<TxnId, bool> txn_perfect;
  for (const ReconstructedVisit& v : visits_) {
    txn_perfect.try_emplace(v.truth_txn, true);
    if (v.truth_parent_visit == 0) continue;  // root: no edge to score
    ++report.child_visits;
    const bool correct =
        v.parent >= 0 &&
        visits_[static_cast<std::size_t>(v.parent)].truth_visit == v.truth_parent_visit;
    if (correct) {
      ++report.correct_edges;
    } else {
      txn_perfect[v.truth_txn] = false;
    }
  }
  report.transactions = txn_perfect.size();
  for (const auto& [txn, perfect] : txn_perfect) {
    if (perfect) ++report.perfect_transactions;
  }
  return report;
}

}  // namespace tbd::trace
