#include "trace/request_log_file.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/mapped_file.h"
#include "util/thread_pool.h"

namespace tbd::trace {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'D', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kRecordSize = 4 + 4 + 8 + 8 + 8;

/// Records per decode chunk when fanning the payload out over the pool.
constexpr std::size_t kDecodeChunk = std::size_t{1} << 16;

/// On little-endian hosts where RequestRecord's in-memory layout is exactly
/// the wire layout (it is on every mainstream ABI), the record stream can be
/// read/written as one bulk memcpy-style transfer instead of field-by-field
/// scribbling — this is where the format's ~10x-over-CSV load speed comes
/// from. The byte-wise codec below remains as the portable fallback, and
/// both produce identical files by construction.
constexpr bool kHostLayoutMatchesWire =
    std::endian::native == std::endian::little &&
    std::is_trivially_copyable_v<RequestRecord> &&
    sizeof(RequestRecord) == kRecordSize && sizeof(TimePoint) == 8 &&
    offsetof(RequestRecord, server) == 0 &&
    offsetof(RequestRecord, class_id) == 4 &&
    offsetof(RequestRecord, arrival) == 8 &&
    offsetof(RequestRecord, departure) == 16 &&
    offsetof(RequestRecord, txn) == 24;

// Little-endian scribblers; portable regardless of host endianness.
template <typename T>
void put(char*& p, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *p++ = static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T take(const char*& p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++)) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

bool save_request_log_bin(const std::string& path, const RequestLog& records) {
  TBD_SPAN("ingest.bin_save");
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open()) return false;

  char header[kHeaderSize];
  char* p = header;
  std::memcpy(p, kMagic, 4);
  p += 4;
  put<std::uint32_t>(p, kVersion);
  put<std::uint64_t>(p, records.size());
  out.write(header, sizeof header);

  if constexpr (kHostLayoutMatchesWire) {
    out.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(records.size() * kRecordSize));
    return static_cast<bool>(out);
  }

  // Encode into a staging buffer flushed in large chunks; one write per
  // record would dominate the save at production record counts.
  constexpr std::size_t kFlushRecords = std::size_t{1} << 16;
  std::vector<char> buffer(kFlushRecords * kRecordSize);
  std::size_t staged = 0;
  auto flush = [&] {
    out.write(buffer.data(), static_cast<std::streamsize>(staged * kRecordSize));
    staged = 0;
  };
  for (const RequestRecord& r : records) {
    p = buffer.data() + staged * kRecordSize;
    put<std::uint32_t>(p, r.server);
    put<std::uint32_t>(p, r.class_id);
    put<std::int64_t>(p, r.arrival.micros());
    put<std::int64_t>(p, r.departure.micros());
    put<std::uint64_t>(p, r.txn);
    if (++staged == kFlushRecords) flush();
  }
  flush();
  return static_cast<bool>(out);
}

RequestLogReadResult load_request_log_bin(const std::string& path) {
  RequestLogReadResult result;
  MappedFile file;
  {
    TBD_SPAN("ingest.bin_read");
    file = MappedFile::open(path);
  }
  if (!file.ok()) {
    result.error = "cannot open file";
    return result;
  }
  if (file.size() < kHeaderSize) {
    result.error = "truncated header";
    return result;
  }
  if (std::memcmp(file.data(), kMagic, 4) != 0) {
    result.error = "bad magic";
    return result;
  }
  const char* p = file.data() + 4;
  const auto version = take<std::uint32_t>(p);
  if (version != kVersion) {
    result.error = "unsupported version";
    return result;
  }
  const auto count = take<std::uint64_t>(p);
  // The count must agree with the file size exactly — checked BEFORE any
  // allocation, so a corrupt header cannot over-allocate or over-read.
  const std::size_t payload = file.size() - kHeaderSize;
  if (payload / kRecordSize < count) {
    result.error = "truncated record stream";
    return result;
  }
  if (count * kRecordSize != payload) {
    result.error = "record count disagrees with file size";
    return result;
  }

  {
    TBD_SPAN("ingest.bin_decode");
    if constexpr (kHostLayoutMatchesWire) {
      // The record array IS the payload: one bulk copy out of the mapping,
      // no staging buffer, no per-field decode. assign() rather than
      // resize()+memcpy keeps it a single pass over the fresh allocation
      // (no zero-fill before the copy).
      const auto* first =
          reinterpret_cast<const RequestRecord*>(file.data() + kHeaderSize);
      result.records.reserve(count);
      advise_huge_pages(result.records.data(), count * sizeof(RequestRecord));
      populate_pages_for_write(result.records.data(),
                               count * sizeof(RequestRecord));
      result.records.assign(first, first + count);
    } else {
      result.records.resize(count);
      const std::size_t chunks = (count + kDecodeChunk - 1) / kDecodeChunk;
      shared_pool().parallel_for_indexed(chunks, [&](std::size_t c) {
        const std::size_t begin = c * kDecodeChunk;
        const std::size_t end = std::min(begin + kDecodeChunk, count);
        const char* q = file.data() + kHeaderSize + begin * kRecordSize;
        for (std::size_t i = begin; i < end; ++i) {
          RequestRecord& r = result.records[i];
          r.server = take<std::uint32_t>(q);
          r.class_id = take<std::uint32_t>(q);
          r.arrival = TimePoint::from_micros(take<std::int64_t>(q));
          r.departure = TimePoint::from_micros(take<std::int64_t>(q));
          r.txn = take<std::uint64_t>(q);
        }
      });
    }
  }
  result.ok = true;
  obs::Registry::global().counter("ingest_bin_records_total").add(count);
  return result;
}

bool sniff_request_log_bin(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) return false;
  char magic[4];
  in.read(magic, sizeof magic);
  return in.gcount() == sizeof magic && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace tbd::trace
