#include "trace/request_log_file.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/mapped_file.h"
#include "util/thread_pool.h"

namespace tbd::trace {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'D', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kRecordSize = 4 + 4 + 8 + 8 + 8;

/// Records per decode chunk when fanning the payload out over the pool.
constexpr std::size_t kDecodeChunk = std::size_t{1} << 16;

/// On little-endian hosts where RequestRecord's in-memory layout is exactly
/// the wire layout (it is on every mainstream ABI), the record stream can be
/// read/written as one bulk memcpy-style transfer instead of field-by-field
/// scribbling — this is where the format's ~10x-over-CSV load speed comes
/// from. The byte-wise codec below remains as the portable fallback, and
/// both produce identical files by construction.
constexpr bool kHostLayoutMatchesWire =
    std::endian::native == std::endian::little &&
    std::is_trivially_copyable_v<RequestRecord> &&
    sizeof(RequestRecord) == kRecordSize && sizeof(TimePoint) == 8 &&
    offsetof(RequestRecord, server) == 0 &&
    offsetof(RequestRecord, class_id) == 4 &&
    offsetof(RequestRecord, arrival) == 8 &&
    offsetof(RequestRecord, departure) == 16 &&
    offsetof(RequestRecord, txn) == 24;

// Little-endian scribblers; portable regardless of host endianness.
template <typename T>
void put(char*& p, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *p++ = static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T take(const char*& p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++)) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

namespace {

void encode_header(char (&header)[kHeaderSize], std::uint64_t count) {
  char* p = header;
  std::memcpy(p, kMagic, 4);
  p += 4;
  put<std::uint32_t>(p, kVersion);
  put<std::uint64_t>(p, count);
}

void encode_record(char* p, const RequestRecord& r) {
  put<std::uint32_t>(p, r.server);
  put<std::uint32_t>(p, r.class_id);
  put<std::int64_t>(p, r.arrival.micros());
  put<std::int64_t>(p, r.departure.micros());
  put<std::uint64_t>(p, r.txn);
}

}  // namespace

bool save_request_log_bin(const std::string& path, const RequestLog& records) {
  TBD_SPAN("ingest.bin_save");
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open()) return false;

  char header[kHeaderSize];
  encode_header(header, records.size());
  out.write(header, sizeof header);

  if constexpr (kHostLayoutMatchesWire) {
    out.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(records.size() * kRecordSize));
    return static_cast<bool>(out);
  }

  // Encode into a staging buffer flushed in large chunks; one write per
  // record would dominate the save at production record counts.
  constexpr std::size_t kFlushRecords = std::size_t{1} << 16;
  std::vector<char> buffer(kFlushRecords * kRecordSize);
  std::size_t staged = 0;
  auto flush = [&] {
    out.write(buffer.data(), static_cast<std::streamsize>(staged * kRecordSize));
    staged = 0;
  };
  for (const RequestRecord& r : records) {
    encode_record(buffer.data() + staged * kRecordSize, r);
    if (++staged == kFlushRecords) flush();
  }
  flush();
  return static_cast<bool>(out);
}

std::string encode_request_log_bin(const RequestLog& records) {
  std::string out(kHeaderSize + records.size() * kRecordSize, '\0');
  char header[kHeaderSize];
  encode_header(header, records.size());
  std::memcpy(out.data(), header, kHeaderSize);
  if constexpr (kHostLayoutMatchesWire) {
    if (!records.empty()) {
      std::memcpy(out.data() + kHeaderSize, records.data(),
                  records.size() * kRecordSize);
    }
  } else {
    for (std::size_t i = 0; i < records.size(); ++i) {
      encode_record(out.data() + kHeaderSize + i * kRecordSize, records[i]);
    }
  }
  return out;
}

namespace {

// Header + size validation shared by the row and columnar decoders, so the
// two cannot disagree on what constitutes a valid file or on the error
// strings/coordinates they report. `error` empty means the payload holds
// exactly `count` records.
struct TbdrHeader {
  std::uint64_t count = 0;
  std::uint64_t header_count = 0;
  std::string error;
  std::size_t error_offset = 0;
  std::uint64_t error_record = 0;
};

TbdrHeader validate_tbdr_header(std::string_view bytes) {
  TbdrHeader h;
  if (bytes.size() < kHeaderSize) {
    h.error = "truncated header";
    h.error_offset = bytes.size();
    return h;
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    h.error = "bad magic";
    h.error_offset = 0;
    return h;
  }
  const char* p = bytes.data() + 4;
  const auto version = take<std::uint32_t>(p);
  if (version != kVersion) {
    h.error = "unsupported version";
    h.error_offset = 4;
    return h;
  }
  const auto count = take<std::uint64_t>(p);
  h.header_count = count;
  // The count must agree with the buffer size exactly — checked BEFORE any
  // allocation, so a corrupt header cannot over-allocate or over-read. The
  // division guards the count * kRecordSize multiply below from overflow.
  const std::size_t payload = bytes.size() - kHeaderSize;
  if (payload / kRecordSize < count) {
    h.error = "truncated record stream";
    h.error_record = payload / kRecordSize;  // first incomplete record
    h.error_offset = kHeaderSize + h.error_record * kRecordSize;
    return h;
  }
  if (count * kRecordSize != payload) {
    h.error = "record count disagrees with file size";
    h.error_record = count;
    h.error_offset = kHeaderSize + count * kRecordSize;  // first surplus
    return h;
  }
  h.count = count;
  return h;
}

}  // namespace

RequestLogReadResult decode_request_log_bin(std::string_view bytes) {
  RequestLogReadResult result;
  result.input_size = bytes.size();
  TbdrHeader header = validate_tbdr_header(bytes);
  result.header_count = header.header_count;
  if (!header.error.empty()) {
    result.error = std::move(header.error);
    result.error_offset = header.error_offset;
    result.error_record = header.error_record;
    return result;
  }
  const std::uint64_t count = header.count;

  {
    TBD_SPAN("ingest.bin_decode");
    if constexpr (kHostLayoutMatchesWire) {
      // The record array IS the payload: one bulk copy out of the mapping,
      // no staging buffer, no per-field decode. assign() rather than
      // resize()+memcpy keeps it a single pass over the fresh allocation
      // (no zero-fill before the copy).
      const auto* first =
          reinterpret_cast<const RequestRecord*>(bytes.data() + kHeaderSize);
      result.records.reserve(count);
      advise_huge_pages(result.records.data(), count * sizeof(RequestRecord));
      populate_pages_for_write(result.records.data(),
                               count * sizeof(RequestRecord));
      result.records.assign(first, first + count);
    } else {
      result.records.resize(count);
      const std::size_t chunks = (count + kDecodeChunk - 1) / kDecodeChunk;
      shared_pool().parallel_for_indexed(chunks, [&](std::size_t c) {
        const std::size_t begin = c * kDecodeChunk;
        const std::size_t end = std::min(begin + kDecodeChunk, count);
        const char* q = bytes.data() + kHeaderSize + begin * kRecordSize;
        for (std::size_t i = begin; i < end; ++i) {
          RequestRecord& r = result.records[i];
          r.server = take<std::uint32_t>(q);
          r.class_id = take<std::uint32_t>(q);
          r.arrival = TimePoint::from_micros(take<std::int64_t>(q));
          r.departure = TimePoint::from_micros(take<std::int64_t>(q));
          r.txn = take<std::uint64_t>(q);
        }
      });
    }
  }
  result.ok = true;
  obs::Registry::global().counter("ingest_bin_records_total").add(count);
  return result;
}

RequestLogReadResult load_request_log_bin(const std::string& path) {
  MappedFile file;
  {
    TBD_SPAN("ingest.bin_read");
    file = MappedFile::open(path);
  }
  if (!file.ok()) {
    RequestLogReadResult result;
    result.error = "cannot open file";
    return result;
  }
  if (file.empty()) return decode_request_log_bin(std::string_view{});
  return decode_request_log_bin(std::string_view{file.data(), file.size()});
}

RequestColumnsReadResult decode_request_log_bin_columns(std::string_view bytes) {
  RequestColumnsReadResult result;
  result.input_size = bytes.size();
  TbdrHeader header = validate_tbdr_header(bytes);
  result.header_count = header.header_count;
  if (!header.error.empty()) {
    result.error = std::move(header.error);
    result.error_offset = header.error_offset;
    result.error_record = header.error_record;
    return result;
  }
  const std::uint64_t count = header.count;

  {
    TBD_SPAN("ingest.bin_decode");
    // Sized but not faulted: each chunk populates its own output slices just
    // before writing them, so the kernel's zeroing of the fresh pages stays
    // cache-hot and is overwritten before write-back (same trick as the
    // TBDR v2 segment decoder, segment_log.cpp).
    result.records.resize_for_overwrite(count);
    RequestColumns& cols = result.records;
    const std::size_t chunks = (count + kDecodeChunk - 1) / kDecodeChunk;
    if (chunks > 0) {
      shared_pool().parallel_for_indexed(chunks, [&](std::size_t c) {
        const std::size_t begin = c * kDecodeChunk;
        const std::size_t end = std::min(begin + kDecodeChunk, count);
        const std::size_t slice = end - begin;
        populate_pages_for_write(cols.arrival_us.data() + begin,
                                 slice * sizeof(std::int64_t));
        populate_pages_for_write(cols.departure_us.data() + begin,
                                 slice * sizeof(std::int64_t));
        populate_pages_for_write(cols.server.data() + begin,
                                 slice * sizeof(ServerIndex));
        populate_pages_for_write(cols.class_id.data() + begin,
                                 slice * sizeof(ClassId));
        populate_pages_for_write(cols.txn.data() + begin,
                                 slice * sizeof(TxnId));
        if constexpr (kHostLayoutMatchesWire) {
          // The wire rows already are host RequestRecords; the decode is a
          // pure row->column transpose of the mapping. Within each chunk the
          // transpose runs in L2-sized tiles, one destination column at a
          // time: each tile's rows are read five times while they are cache
          // hot, and every column write stream stays sequential — instead of
          // one pass scattering each record across five far-apart cache
          // lines, which is what made SoA decode lag AoS (docs/columnar.md).
          constexpr std::size_t kTileRecords = std::size_t{1} << 13;  // 256 KiB
          const auto* rows =
              reinterpret_cast<const RequestRecord*>(bytes.data() + kHeaderSize);
          for (std::size_t tile = begin; tile < end; tile += kTileRecords) {
            const std::size_t tend = std::min(tile + kTileRecords, end);
            for (std::size_t i = tile; i < tend; ++i) {
              cols.arrival_us[i] = rows[i].arrival.micros();
            }
            for (std::size_t i = tile; i < tend; ++i) {
              cols.departure_us[i] = rows[i].departure.micros();
            }
            for (std::size_t i = tile; i < tend; ++i) {
              cols.server[i] = rows[i].server;
            }
            for (std::size_t i = tile; i < tend; ++i) {
              cols.class_id[i] = rows[i].class_id;
            }
            for (std::size_t i = tile; i < tend; ++i) {
              cols.txn[i] = rows[i].txn;
            }
          }
        } else {
          const char* q = bytes.data() + kHeaderSize + begin * kRecordSize;
          for (std::size_t i = begin; i < end; ++i) {
            cols.server[i] = take<std::uint32_t>(q);
            cols.class_id[i] = take<std::uint32_t>(q);
            cols.arrival_us[i] = take<std::int64_t>(q);
            cols.departure_us[i] = take<std::int64_t>(q);
            cols.txn[i] = take<std::uint64_t>(q);
          }
        }
      });
    }
  }
  result.ok = true;
  obs::Registry::global().counter("ingest_bin_records_total").add(count);
  return result;
}

RequestColumnsReadResult load_request_log_bin_columns(const std::string& path) {
  MappedFile file;
  {
    TBD_SPAN("ingest.bin_read");
    file = MappedFile::open(path);
  }
  if (!file.ok()) {
    RequestColumnsReadResult result;
    result.error = "cannot open file";
    return result;
  }
  if (file.empty()) return decode_request_log_bin_columns(std::string_view{});
  return decode_request_log_bin_columns(
      std::string_view{file.data(), file.size()});
}

bool sniff_request_log_bin(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) return false;
  char magic[4];
  in.read(magic, sizeof magic);
  return in.gcount() == sizeof magic && std::memcmp(magic, kMagic, 4) == 0;
}

std::uint32_t sniff_request_log_version(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) return 0;
  char head[8];
  in.read(head, sizeof head);
  if (in.gcount() < 4 || std::memcmp(head, kMagic, 4) != 0) return 0;
  if (in.gcount() < static_cast<std::streamsize>(sizeof head)) return kVersion;
  const char* p = head + 4;
  return take<std::uint32_t>(p);
}

}  // namespace tbd::trace
