// TBDR v2: segmented, delta-compressed binary request logs.
//
// TBDR v1 (request_log_file.h) is a single blob — one header whose record
// count must match the file size exactly, then fixed 32-byte rows. That
// shape is hostile to two production needs: an always-on flight recorder
// (a crash while appending invalidates the whole file) and parallel replay
// (one count, one stream, no independently decodable units). v2 replaces
// the blob with fixed-capacity sealed segments, modeled on segmented
// write-ahead logs with per-segment parallel recovery:
//
//   file header: "TBDR" u32-version(2)                          (8 bytes)
//   segment, repeated:
//     frame header (40 bytes, little-endian):
//       u32 "TSEG"  u32 record_count  u64 payload_bytes
//       i64 min_arrival_us  i64 max_departure_us
//       u32 payload_crc32c  u32 header_crc32c
//     payload: five column blocks, in this order
//       departure_us  seeds: varint zigzag(dep[0]), varint zigzag(dep[1] -
//                     dep[0]) when n >= 2; then a packed block of
//                     zigzag(delta-of-delta) for rows >= 2       (wire.h)
//       arrival_us    packed block of (departure - arrival), i.e. the
//                     residence time, zigzagged (all n rows, no seed)
//       server        packed block of plain values (must fit 32 bits)
//       class_id      packed block of plain values (must fit 32 bits)
//       txn           seed: varint txn[0] (raw); then a packed block of
//                     zigzag(delta) for rows >= 1
//
// A packed block is one tag byte then the data: tag 0 = LEB128 varint
// stream; tags 1/2/4/8 = fixed little-endian words of that byte width (any
// other tag is corrupt). The encoder picks the smallest fixed width that
// fits every value in the block and switches to varints only when their
// total is MORE than 2x smaller — fixed words decode branch-free and
// vectorize, so mild varint savings are not worth the decode cost. Chain
// seeds live OUTSIDE the block so one absolute value (an epoch timestamp,
// a large first txn id) cannot force the whole block wide.
//
// The delta-of-delta chain rides on DEPARTURE because request logs are
// emitted in departure order (records.h): on such logs the second
// differences are near zero, residence times are small positive values,
// and server/class ids are tiny — ~9-10 bytes per record against v1's
// fixed 32. Out-of-order logs still encode correctly (the chains are exact
// under any input), just larger. An empty (record_count == 0) segment has
// an empty payload and decodes fine.
//
// Delta chains reset at every segment boundary, so each segment decodes
// independently: the loader walks the (checksummed) frame headers once to
// build a segment index, then fans the payloads out across the shared pool
// straight into RequestColumns — record order is preserved exactly, and the
// result is byte-identical at any TBD_THREADS. All delta arithmetic is
// mod-2^64 (wire.h), so the encoding is lossless for any record values.
// On real request logs the payload runs ~7-10 bytes/record vs v1's fixed
// 32, which is the point: both this host's loaders are page-materialization
// bound, so fewer bytes is the remaining ingest lever (docs/file-formats.md).
//
// Crash safety: SegmentLogWriter appends and seals one segment at a time
// and flushes after each seal. A writer killed mid-segment leaves a
// truncated tail; DecodeMode::kRecoverTail (the front-door default) then
// recovers every sealed segment and reports the dropped tail in `warning`
// ("recovered N sealed segments; ..."), losing at most the one unsealed
// segment. DecodeMode::kStrict instead fails with the same coordinates —
// the mode for converters and integrity checks. Corruption in a NON-final
// segment is never skipped: headers are individually checksummed and every
// payload must pass its CRC and decode to exactly record_count values in
// exactly payload_bytes, so damage is localized to a segment and reported
// with its index and byte offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "trace/records.h"
#include "trace/request_columns.h"

namespace tbd::trace {

/// Version stamped in the file header ("TBDR" magic is shared with v1; the
/// version field selects the layout — see sniff_request_log_version).
inline constexpr std::uint32_t kRequestLogV2Version = 2;

/// Records per sealed segment (the last segment of a file may hold fewer).
/// 64Ki records ≈ 0.4-0.7 MB encoded: large enough that frame headers are
/// noise (<0.1%), small enough that a pool of segments load-balances and a
/// lost unsealed tail is bounded.
inline constexpr std::size_t kDefaultSegmentRecords = std::size_t{1} << 16;

struct SegmentLogOptions {
  /// Capacity of each sealed segment, clamped to [1, 2^32-1] records.
  std::size_t segment_records = kDefaultSegmentRecords;
};

enum class DecodeMode {
  /// Any invalid byte fails the whole decode (converters, fuzzing, tests).
  kStrict,
  /// A truncated or corrupt FINAL segment is dropped and reported via
  /// `warning`; the sealed prefix loads normally. Invalid non-final
  /// segments still fail. This is the front-door and crash-recovery mode.
  kRecoverTail,
};

/// Decode result. Diagnostics mirror RequestLogReadResult where they
/// overlap; `error_segment` locates the failing segment (0-based), and
/// `segments` counts the sealed segments actually decoded into `records`.
struct SegmentLogReadResult {
  RequestColumns records;
  bool ok = false;
  /// Stable short code ("truncated segment payload", ...); empty when ok.
  std::string error;
  /// kRecoverTail only: non-empty when a tail was dropped —
  /// "recovered N sealed segments; <error> at byte offset X, segment K".
  std::string warning;
  /// Byte offset of the validation failure (see each error's site); also
  /// set when `warning` reports a dropped tail. 0 otherwise.
  std::size_t error_offset = 0;
  /// 0-based index of the segment that failed validation (valid only when
  /// error or warning is non-empty).
  std::uint64_t error_segment = 0;
  /// Sealed segments decoded into `records`.
  std::uint64_t segments = 0;
  /// Total input size in bytes (0 only when the file could not be opened).
  std::size_t input_size = 0;
};

/// The exact byte string save_request_log_v2 writes, in memory.
[[nodiscard]] std::string encode_request_log_v2(
    const RequestColumnsView& records, const SegmentLogOptions& options = {});
[[nodiscard]] std::string encode_request_log_v2(
    const RequestLog& records, const SegmentLogOptions& options = {});

/// Writes the records as a v2 segment log; returns false on I/O failure.
bool save_request_log_v2(const std::string& path, const RequestLog& records,
                         const SegmentLogOptions& options = {});

/// Decodes a v2 byte buffer into columns. Header validation (frame magic,
/// header CRC, payload bounds, count-vs-payload-size) happens in one
/// sequential scan BEFORE any allocation; payload decode + payload CRC then
/// fan out per segment across the shared pool.
[[nodiscard]] SegmentLogReadResult decode_request_log_v2(
    std::string_view bytes, DecodeMode mode = DecodeMode::kRecoverTail);

/// Maps the file and decodes it.
[[nodiscard]] SegmentLogReadResult load_request_log_v2(
    const std::string& path, DecodeMode mode = DecodeMode::kRecoverTail);

/// Incremental segmented writer: the durable substrate for always-on
/// capture (tbd_watch --record-out, flight-recorder --record-out). Appended
/// records accumulate in memory until the segment capacity is reached, then
/// the segment is encoded, written, and flushed as one unit. If the process
/// dies mid-segment, the file recovers to the last seal (kRecoverTail).
class SegmentLogWriter {
 public:
  SegmentLogWriter() = default;
  ~SegmentLogWriter() { close(); }
  SegmentLogWriter(const SegmentLogWriter&) = delete;
  SegmentLogWriter& operator=(const SegmentLogWriter&) = delete;

  /// Truncates `path` and writes the file header. False on I/O failure.
  [[nodiscard]] bool open(const std::string& path,
                          const SegmentLogOptions& options = {});

  /// Buffers one record, sealing a segment when the capacity fills.
  void append(const RequestRecord& r);

  /// Seals the buffered records (if any) into a segment now, regardless of
  /// fill level. Called automatically at capacity and by close().
  void seal();

  /// Seals the tail and closes the file. Returns false if any write failed
  /// (sticky: a mid-stream write error also surfaces here). Idempotent.
  bool close();

  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t segments_sealed() const { return segments_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }

 private:
  std::ofstream out_;
  SegmentLogOptions options_;
  RequestColumns pending_;
  std::string scratch_;  // reused payload staging buffer
  std::string frame_;    // reused header+payload buffer written per seal
  std::uint64_t records_ = 0;
  std::uint64_t segments_ = 0;
  std::uint64_t bytes_ = 0;
  bool failed_ = false;
};

}  // namespace tbd::trace
