#include "trace/segment_log.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/mapped_file.h"
#include "trace/wire.h"
#include "util/thread_pool.h"

namespace tbd::trace {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'D', 'R'};
constexpr char kSegMagic[4] = {'T', 'S', 'E', 'G'};
constexpr std::size_t kFileHeaderSize = 4 + 4;
constexpr std::size_t kSegHeaderSize = 4 + 4 + 8 + 8 + 8 + 4 + 4;
/// Bytes of the frame header covered by header_crc32c (everything before it).
constexpr std::size_t kSegHeaderCrcBytes = kSegHeaderSize - 4;
constexpr std::size_t kColumnCount = 5;
/// Every record contributes at least one byte to each of the five columns
/// (narrowest fixed width / shortest varint), and each column block carries
/// one tag byte, so a frame header claiming
/// payload_bytes < kColumnCount + 5 * count is structurally impossible —
/// rejected during the scan, before any allocation.
constexpr std::uint64_t kMinBytesPerRecord = kColumnCount;
/// Worst-case encoded record: 10-byte varints (or 8-byte fixed) in all five
/// columns. Sizes the encoder's staging buffer (plus the five tag bytes).
constexpr std::size_t kMaxBytesPerRecord = kColumnCount * wire::kMaxVarintBytes;
/// Chain seeds carried as plain varints outside the packed blocks: the
/// departure column's first value and first delta, and the txn column's
/// first id. Each replaces one packed value, so the per-record worst case
/// is unchanged; the staging buffer just reserves their varint ceiling.
constexpr std::size_t kChainSeedCount = 3;

/// Column-block encoding tag: the fixed byte width of each value, or
/// kTagVarint for an LEB128 varint stream. Any other tag byte is corrupt.
enum : std::uint8_t {
  kTagVarint = 0,
  kTagFixed1 = 1,
  kTagFixed2 = 2,
  kTagFixed4 = 4,
  kTagFixed8 = 8,
};

// Little-endian scribblers; portable regardless of host endianness.
template <typename T>
void put(char*& p, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *p++ = static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T take(const char*& p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++)) << (8 * i);
  }
  return static_cast<T>(v);
}

std::size_t clamp_segment_records(std::size_t requested) {
  return std::clamp<std::size_t>(requested, 1, 0xFFFFFFFFu);
}

/// Appends one column block (tag byte + data) for values[0..n) to `p`.
/// Picks the smallest fixed byte width that holds every value, falling back
/// to a varint stream only when that is MORE than 2x smaller. Fixed-width
/// blocks decode branchlessly (and vectorized); a mixed-length varint
/// stream costs a data-dependent branch per value, which on a 5M-record
/// load measures ~10 ms — worth paying only when the byte savings dwarf it
/// (cold I/O reads back the saved bytes at ~2 GB/s, so byte-for-byte a
/// varint needs to save well over half the block to win).
char* encode_column(const std::uint64_t* values, std::size_t n, char* p) {
  std::uint64_t all_bits = 0;
  std::uint64_t varint_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    all_bits |= values[i];
    varint_total += wire::varint_size(values[i]);
  }
  std::uint8_t width = kTagFixed8;
  if (all_bits <= 0xFF) {
    width = kTagFixed1;
  } else if (all_bits <= 0xFFFF) {
    width = kTagFixed2;
  } else if (all_bits <= 0xFFFFFFFFu) {
    width = kTagFixed4;
  }
  if (varint_total * 2 < static_cast<std::uint64_t>(n) * width) {
    *p++ = static_cast<char>(kTagVarint);
    for (std::size_t i = 0; i < n; ++i) {
      p = wire::put_varint_raw(p, values[i]);
    }
    return p;
  }
  *p++ = static_cast<char>(width);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = values[i];
    for (std::size_t b = 0; b < width; ++b) {
      *p++ = static_cast<char>(v & 0xFF);
      v >>= 8;
    }
  }
  return p;
}

/// Appends one sealed segment (frame header + payload) for the non-empty
/// rows of `seg` to `out`; `scratch` is the caller's reusable payload
/// staging buffer (sized for the worst case, never shrunk). The transformed
/// (zigzag/delta) values are staged per column so the size-planning pass and
/// the emit pass in encode_column read the same numbers.
void encode_segment(const RequestColumnsView& seg, std::string& scratch,
                    std::string& out) {
  const std::size_t n = seg.size();
  if (scratch.size() <
      n * kMaxBytesPerRecord + kColumnCount + kChainSeedCount * wire::kMaxVarintBytes) {
    scratch.resize(n * kMaxBytesPerRecord + kColumnCount +
                   kChainSeedCount * wire::kMaxVarintBytes);
  }
  std::vector<std::uint64_t> values(n);
  std::uint64_t* vals = values.data();
  char* p = scratch.data();
  std::int64_t min_arrival = seg.arrival_us[0];
  std::int64_t max_departure = seg.departure_us[0];
  for (std::size_t i = 1; i < n; ++i) {
    max_departure = std::max(max_departure, seg.departure_us[i]);
    min_arrival = std::min(min_arrival, seg.arrival_us[i]);
  }
  {  // departure: chain seeds, then delta-of-delta zigzag for rows >= 2.
     // The seeds ride outside the packed block so the absolute first
     // timestamp (epoch microseconds in real captures) and the first delta
     // cannot poison the width choice for the whole column of small
     // second-order deltas.
    p = wire::put_varint_raw(p, wire::zigzag_encode(seg.departure_us[0]));
    std::size_t m = 0;
    if (n >= 2) {
      std::uint64_t prev = static_cast<std::uint64_t>(seg.departure_us[1]);
      std::uint64_t prev_delta =
          prev - static_cast<std::uint64_t>(seg.departure_us[0]);
      p = wire::put_varint_raw(
          p, wire::zigzag_encode(static_cast<std::int64_t>(prev_delta)));
      for (std::size_t i = 2; i < n; ++i) {
        const auto cur = static_cast<std::uint64_t>(seg.departure_us[i]);
        const std::uint64_t delta = cur - prev;
        vals[m++] =
            wire::zigzag_encode(static_cast<std::int64_t>(delta - prev_delta));
        prev_delta = delta;
        prev = cur;
      }
    }
    p = encode_column(vals, m, p);
  }
  {  // arrival: residence time (departure - arrival), zigzag
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t residence =
          static_cast<std::uint64_t>(seg.departure_us[i]) -
          static_cast<std::uint64_t>(seg.arrival_us[i]);
      vals[i] = wire::zigzag_encode(static_cast<std::int64_t>(residence));
    }
    p = encode_column(vals, n, p);
  }
  for (std::size_t i = 0; i < n; ++i) vals[i] = seg.server[i];
  p = encode_column(vals, n, p);
  for (std::size_t i = 0; i < n; ++i) vals[i] = seg.class_id[i];
  p = encode_column(vals, n, p);
  {  // txn: raw seed, then delta zigzag for rows >= 1 (the first id is an
     // arbitrary-magnitude value; the deltas of a departure-ordered log are
     // small).
    p = wire::put_varint_raw(p, seg.txn[0]);
    std::uint64_t prev = seg.txn[0];
    std::size_t m = 0;
    for (std::size_t i = 1; i < n; ++i) {
      vals[m++] = wire::zigzag_encode(static_cast<std::int64_t>(seg.txn[i] - prev));
      prev = seg.txn[i];
    }
    p = encode_column(vals, m, p);
  }
  const auto payload_bytes = static_cast<std::size_t>(p - scratch.data());

  char header[kSegHeaderSize];
  char* h = header;
  std::memcpy(h, kSegMagic, 4);
  h += 4;
  put<std::uint32_t>(h, static_cast<std::uint32_t>(n));
  put<std::uint64_t>(h, payload_bytes);
  put<std::int64_t>(h, min_arrival);
  put<std::int64_t>(h, max_departure);
  put<std::uint32_t>(h, wire::crc32c(scratch.data(), payload_bytes));
  put<std::uint32_t>(h, wire::crc32c(header, kSegHeaderCrcBytes));
  out.append(header, kSegHeaderSize);
  out.append(scratch.data(), payload_bytes);
}

void append_file_header(std::string& out) {
  out.append(kMagic, 4);
  char version[4];
  char* p = version;
  put<std::uint32_t>(p, kRequestLogV2Version);
  out.append(version, 4);
}

// ---- decoding ---------------------------------------------------------------

/// One sealed segment located by the header scan.
struct SegmentRef {
  std::size_t header_off = 0;
  std::size_t payload_off = 0;
  std::size_t payload_bytes = 0;
  std::uint32_t count = 0;
  std::uint32_t payload_crc = 0;
  std::size_t out_off = 0;  ///< prefix sum of counts: first output row
};

/// Sequential walk of the frame headers. Stops at the first invalid byte;
/// `error` empty means the file ended exactly on a segment boundary.
struct ScanOutcome {
  std::vector<SegmentRef> segments;
  std::uint64_t total_records = 0;
  bool file_header_ok = false;
  std::string error;
  std::size_t error_offset = 0;
};

ScanOutcome scan_segments(std::string_view bytes) {
  ScanOutcome scan;
  if (bytes.size() < kFileHeaderSize) {
    scan.error = "truncated header";
    scan.error_offset = bytes.size();
    return scan;
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    scan.error = "bad magic";
    scan.error_offset = 0;
    return scan;
  }
  const char* v = bytes.data() + 4;
  if (take<std::uint32_t>(v) != kRequestLogV2Version) {
    scan.error = "unsupported version";
    scan.error_offset = 4;
    return scan;
  }
  scan.file_header_ok = true;

  std::size_t pos = kFileHeaderSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kSegHeaderSize) {
      scan.error = "truncated segment header";
      scan.error_offset = pos;
      return scan;
    }
    const char* h = bytes.data() + pos;
    if (std::memcmp(h, kSegMagic, 4) != 0) {
      scan.error = "bad segment magic";
      scan.error_offset = pos;
      return scan;
    }
    const char* f = h + 4;
    const auto count = take<std::uint32_t>(f);
    const auto payload_bytes = take<std::uint64_t>(f);
    f += 16;  // min/max timestamps: advisory index fields, not validated
    const auto payload_crc = take<std::uint32_t>(f);
    const auto header_crc = take<std::uint32_t>(f);
    if (wire::crc32c(h, kSegHeaderCrcBytes) != header_crc) {
      scan.error = "bad segment header checksum";
      scan.error_offset = pos + kSegHeaderCrcBytes;
      return scan;
    }
    // The count/size sanity check runs before the payload is even located,
    // so a corrupt (but checksummed-in-the-clear) header can neither
    // over-allocate nor over-read. count is 32-bit, so the multiply below
    // cannot overflow the u64 comparison.
    if (count == 0 ? payload_bytes != 0
                   : payload_bytes <
                         kColumnCount + count * kMinBytesPerRecord) {
      scan.error = "segment record count disagrees with payload size";
      scan.error_offset = pos + 4;
      return scan;
    }
    if (payload_bytes > bytes.size() - pos - kSegHeaderSize) {
      scan.error = "truncated segment payload";
      scan.error_offset = pos + kSegHeaderSize;
      return scan;
    }
    SegmentRef seg;
    seg.header_off = pos;
    seg.payload_off = pos + kSegHeaderSize;
    seg.payload_bytes = static_cast<std::size_t>(payload_bytes);
    seg.count = count;
    seg.payload_crc = payload_crc;
    seg.out_off = static_cast<std::size_t>(scan.total_records);
    scan.segments.push_back(seg);
    scan.total_records += count;
    pos = seg.payload_off + seg.payload_bytes;
  }
  return scan;
}

/// Little-endian load of W bytes, zero-extended. The byte-OR shape is
/// endian-portable; on little-endian hosts the compiler folds it into a
/// single load, so unpack_fixed's loops stay auto-vectorizable.
template <std::size_t W>
inline std::uint64_t load_le(const char* q) {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < W; ++b) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(q[b]))
         << (8 * b);
  }
  return v;
}

/// Streams `n` raw varint values through sink(i, value). Returns the
/// position after the last varint, or nullptr on a malformed or overrunning
/// varint. Runs unchecked until within kMaxVarintBytes of `pend`.
template <typename Sink>
const char* for_varints(const char* p, const char* pend, std::size_t n,
                        Sink&& sink) {
  std::size_t i = 0;
  const char* safe_end =
      (static_cast<std::size_t>(pend - p) > wire::kMaxVarintBytes)
          ? pend - wire::kMaxVarintBytes
          : p;
  for (; i < n && p < safe_end; ++i) {
    std::uint64_t v;
    p = wire::get_varint_unchecked(p, v);
    if (p == nullptr) return nullptr;
    sink(i, v);
  }
  for (; i < n; ++i) {
    std::uint64_t v;
    p = wire::get_varint(p, pend, v);
    if (p == nullptr) return nullptr;
    sink(i, v);
  }
  return p;
}

/// Streams one fixed-width block of `n` W-byte little-endian values through
/// sink(i, value). The sink returns void and the loop carries no per-value
/// branch of any kind, so pure sinks (plain stores, the arrival transform)
/// auto-vectorize and chain sinks run at the latency of their own adds —
/// this is why the encoder prefers fixed widths: mixed-length varint
/// streams cost a data-dependent branch per value, which mispredicts on
/// exactly the near-uniform small deltas real logs produce.
template <std::size_t W, typename Sink>
void for_fixed(const char* p, std::size_t n, Sink&& sink) {
  for (std::size_t i = 0; i < n; ++i) sink(i, load_le<W>(p + i * W));
}

/// Streams one column block (tag byte + data) of raw wire values through
/// sink(i, value), fusing the column transform into the single decode pass
/// (every value is touched exactly once; the only second read of any byte
/// is the CRC pass, which stays cache-hot at segment granularity). Returns
/// the position after the block, or nullptr when the block is structurally
/// invalid (unknown tag, data past the payload end, malformed varint).
/// Sinks must accept values up to 64 bits and defer any range validation —
/// see the caller's accumulated-OR overflow checks for the 32-bit columns.
template <typename Sink>
const char* for_column(const char* p, const char* pend, std::size_t n,
                       Sink&& sink) {
  if (p >= pend) return nullptr;
  const auto tag = static_cast<std::uint8_t>(*p++);
  if (tag == kTagVarint) return for_varints(p, pend, n, sink);
  if (tag != kTagFixed1 && tag != kTagFixed2 && tag != kTagFixed4 &&
      tag != kTagFixed8) {
    return nullptr;
  }
  if (static_cast<std::size_t>(pend - p) / tag < n) return nullptr;
  switch (tag) {
    case kTagFixed1:
      for_fixed<1>(p, n, sink);
      break;
    case kTagFixed2:
      for_fixed<2>(p, n, sink);
      break;
    case kTagFixed4:
      for_fixed<4>(p, n, sink);
      break;
    default:
      for_fixed<8>(p, n, sink);
      break;
  }
  return p + n * tag;
}

enum : std::uint8_t {
  kSegOk = 0,
  kSegCorruptPayload = 1,
  kSegBadPayloadCrc = 2,
};

/// Decodes one segment's payload into rows [out_off, out_off + count) of
/// `cols`. Runs on the pool; segments own disjoint row ranges, so the result
/// is identical at any thread count.
///
/// Two deliberate cache games here. First, the worker populates each output
/// column slice (populate_pages_for_write) immediately before writing it:
/// the kernel's unavoidable zeroing of fresh anon pages then lands on a
/// ~0.5 MB slice the decode overwrites while it is still cache-hot, so DRAM
/// sees one write-back of final data per output byte instead of a zero
/// pass, a read-for-ownership, and a write-back (pre-faulting all columns
/// up front measures ~25 ms extra on a 5M-record load). Second, every
/// column transform is fused into its single decode pass via for_column's
/// void sinks — the payload bytes are read once by the CRC (which warms
/// them) and once by the decode, and every output value is stored once.
std::uint8_t decode_segment_payload(std::string_view bytes,
                                    const SegmentRef& seg,
                                    RequestColumns& cols) {
  const char* pay = bytes.data() + seg.payload_off;
  if (wire::crc32c(pay, seg.payload_bytes) != seg.payload_crc) {
    return kSegBadPayloadCrc;
  }
  const char* p = pay;
  const char* pend = pay + seg.payload_bytes;
  const std::size_t n = seg.count;
  if (n == 0) return kSegOk;  // scan enforced an empty payload
  std::int64_t* dep = cols.departure_us.data() + seg.out_off;
  std::int64_t* arr = cols.arrival_us.data() + seg.out_off;
  ServerIndex* server = cols.server.data() + seg.out_off;
  ClassId* class_id = cols.class_id.data() + seg.out_off;
  TxnId* txn = cols.txn.data() + seg.out_off;

  {  // departure: chain seeds, then invert the delta-of-delta chain
    populate_pages_for_write(dep, n * sizeof(*dep));
    std::uint64_t seed;
    p = wire::get_varint(p, pend, seed);
    if (p == nullptr) return kSegCorruptPayload;
    std::uint64_t prev = static_cast<std::uint64_t>(wire::zigzag_decode(seed));
    dep[0] = static_cast<std::int64_t>(prev);
    std::uint64_t delta = 0;
    if (n >= 2) {
      p = wire::get_varint(p, pend, seed);
      if (p == nullptr) return kSegCorruptPayload;
      delta = static_cast<std::uint64_t>(wire::zigzag_decode(seed));
      prev += delta;
      dep[1] = static_cast<std::int64_t>(prev);
    }
    std::int64_t* dep2 = dep + 2;
    p = for_column(p, pend, n >= 2 ? n - 2 : 0,
                   [&](std::size_t i, std::uint64_t v) {
                     delta += static_cast<std::uint64_t>(wire::zigzag_decode(v));
                     prev += delta;
                     dep2[i] = static_cast<std::int64_t>(prev);
                   });
    if (p == nullptr) return kSegCorruptPayload;
  }
  {  // arrival: departure minus residence (pure, vectorizes)
    populate_pages_for_write(arr, n * sizeof(*arr));
    p = for_column(p, pend, n, [&](std::size_t i, std::uint64_t v) {
      const auto residence =
          static_cast<std::uint64_t>(wire::zigzag_decode(v));
      arr[i] = static_cast<std::int64_t>(static_cast<std::uint64_t>(dep[i]) -
                                         residence);
    });
    if (p == nullptr) return kSegCorruptPayload;
  }
  {  // server + class_id: plain values, but must fit 32 bits. The overflow
     // test is one check of an accumulated OR, not a branch per value —
     // only encodings that can carry more than 32 bits (varint, fixed8)
     // even pay the accumulation.
    std::uint64_t wide = 0;
    populate_pages_for_write(server, n * sizeof(*server));
    p = for_column(p, pend, n, [&](std::size_t i, std::uint64_t v) {
      wide |= v;
      server[i] = static_cast<ServerIndex>(v);
    });
    if (p == nullptr) return kSegCorruptPayload;
    populate_pages_for_write(class_id, n * sizeof(*class_id));
    p = for_column(p, pend, n, [&](std::size_t i, std::uint64_t v) {
      wide |= v;
      class_id[i] = static_cast<ClassId>(v);
    });
    if (p == nullptr || (wide >> 32) != 0) return kSegCorruptPayload;
  }
  {  // txn: raw seed, then invert the delta chain
    populate_pages_for_write(txn, n * sizeof(*txn));
    std::uint64_t prev;
    p = wire::get_varint(p, pend, prev);
    if (p == nullptr) return kSegCorruptPayload;
    txn[0] = prev;
    TxnId* txn1 = txn + 1;
    p = for_column(p, pend, n - 1, [&](std::size_t i, std::uint64_t v) {
      prev += static_cast<std::uint64_t>(wire::zigzag_decode(v));
      txn1[i] = prev;
    });
    if (p == nullptr) return kSegCorruptPayload;
  }
  // Every column decoded; the payload must hold nothing else.
  if (p != pend) return kSegCorruptPayload;
  return kSegOk;
}

std::string recovery_warning(std::uint64_t sealed, const std::string& error,
                             std::size_t error_offset,
                             std::uint64_t error_segment) {
  std::string w = "recovered " + std::to_string(sealed) + " sealed segment";
  if (sealed != 1) w += 's';
  w += "; dropped tail: " + error + " at byte offset " +
       std::to_string(error_offset) + ", segment " +
       std::to_string(error_segment);
  return w;
}

}  // namespace

std::string encode_request_log_v2(const RequestColumnsView& records,
                                  const SegmentLogOptions& options) {
  TBD_SPAN("ingest.seg_encode");
  const std::size_t cap = clamp_segment_records(options.segment_records);
  const std::size_t n = records.size();
  std::string out;
  const std::size_t segments = (n + cap - 1) / cap;
  out.reserve(kFileHeaderSize + segments * kSegHeaderSize + n * 12);
  append_file_header(out);
  std::string scratch;
  for (std::size_t offset = 0; offset < n; offset += cap) {
    const std::size_t take_n = std::min(cap, n - offset);
    encode_segment(records.subview(offset, take_n), scratch, out);
  }
  return out;
}

std::string encode_request_log_v2(const RequestLog& records,
                                  const SegmentLogOptions& options) {
  return encode_request_log_v2(RequestColumns::from_records(records).view(),
                               options);
}

bool save_request_log_v2(const std::string& path, const RequestLog& records,
                         const SegmentLogOptions& options) {
  TBD_SPAN("ingest.seg_save");
  const std::string bytes = encode_request_log_v2(records, options);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open()) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

SegmentLogReadResult decode_request_log_v2(std::string_view bytes,
                                           DecodeMode mode) {
  SegmentLogReadResult result;
  result.input_size = bytes.size();

  ScanOutcome scan = scan_segments(bytes);
  if (!scan.file_header_ok) {
    result.error = std::move(scan.error);
    result.error_offset = scan.error_offset;
    return result;
  }
  bool tail_dropped = false;
  if (!scan.error.empty()) {
    result.error_offset = scan.error_offset;
    result.error_segment = scan.segments.size();
    if (mode == DecodeMode::kStrict) {
      result.error = std::move(scan.error);
      return result;
    }
    tail_dropped = true;
  }

  const auto& segments = scan.segments;
  {
    TBD_SPAN("ingest.seg_decode");
    // Sized but not faulted: each worker populates its own segment's output
    // slices right before writing them (see decode_segment_payload).
    result.records.resize_for_overwrite(
        static_cast<std::size_t>(scan.total_records));
    std::vector<std::uint8_t> seg_error(segments.size(), kSegOk);
    if (!segments.empty()) {
      shared_pool().parallel_for_indexed(segments.size(), [&](std::size_t i) {
        seg_error[i] = decode_segment_payload(bytes, segments[i], result.records);
      });
    }
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (seg_error[i] == kSegOk) continue;
      const bool bad_crc = seg_error[i] == kSegBadPayloadCrc;
      const std::string error =
          bad_crc ? "bad segment payload checksum" : "corrupt segment payload";
      const std::size_t offset =
          bad_crc ? segments[i].header_off + 32 : segments[i].payload_off;
      // Only the file's final segment is ever droppable (the crash-recovery
      // case); a bad payload anywhere else — or on top of an already-dropped
      // tail — is corruption, not truncation.
      if (mode == DecodeMode::kStrict || tail_dropped ||
          i + 1 != segments.size()) {
        result.records.clear();
        result.error = error;
        result.error_offset = offset;
        result.error_segment = i;
        result.warning.clear();
        return result;
      }
      result.records.resize(segments[i].out_off);
      result.warning = recovery_warning(i, error, offset, i);
      result.error_offset = offset;
      result.error_segment = i;
      result.ok = true;
      result.segments = i;
      obs::Registry::global()
          .counter("ingest_seg_records_total")
          .add(result.records.size());
      return result;
    }
  }
  result.ok = true;
  result.segments = segments.size();
  if (tail_dropped) {
    result.warning =
        recovery_warning(segments.size(), scan.error, scan.error_offset,
                         segments.size());
  }
  obs::Registry::global()
      .counter("ingest_seg_records_total")
      .add(result.records.size());
  return result;
}

SegmentLogReadResult load_request_log_v2(const std::string& path,
                                         DecodeMode mode) {
  MappedFile file;
  {
    TBD_SPAN("ingest.seg_read");
    file = MappedFile::open(path);
  }
  if (!file.ok()) {
    SegmentLogReadResult result;
    result.error = "cannot open file";
    return result;
  }
  if (file.empty()) return decode_request_log_v2(std::string_view{}, mode);
  return decode_request_log_v2(std::string_view{file.data(), file.size()},
                               mode);
}

// ---- SegmentLogWriter -------------------------------------------------------

bool SegmentLogWriter::open(const std::string& path,
                            const SegmentLogOptions& options) {
  close();
  options_ = options;
  options_.segment_records = clamp_segment_records(options.segment_records);
  pending_.clear();
  records_ = 0;
  segments_ = 0;
  bytes_ = 0;
  failed_ = false;
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    failed_ = true;
    return false;
  }
  frame_.clear();
  append_file_header(frame_);
  out_.write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
  out_.flush();
  bytes_ = frame_.size();
  if (!out_) {
    failed_ = true;
    return false;
  }
  return true;
}

void SegmentLogWriter::append(const RequestRecord& r) {
  pending_.push_back(r);
  if (pending_.size() >= options_.segment_records) seal();
}

void SegmentLogWriter::seal() {
  if (pending_.empty() || !out_.is_open()) return;
  frame_.clear();
  encode_segment(pending_.view(), scratch_, frame_);
  out_.write(frame_.data(), static_cast<std::streamsize>(frame_.size()));
  out_.flush();
  if (!out_) failed_ = true;
  bytes_ += frame_.size();
  records_ += pending_.size();
  ++segments_;
  pending_.clear();
}

bool SegmentLogWriter::close() {
  if (out_.is_open()) {
    seal();
    out_.close();
    if (!out_) failed_ = true;
  }
  return !failed_;
}

}  // namespace tbd::trace
