#include "trace/log_io.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <thread>
#include <type_traits>

#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/mapped_file.h"
#include "trace/request_log_file.h"
#include "trace/segment_log.h"
#include "util/thread_pool.h"

namespace tbd::trace {

namespace {

/// How much of a malformed line LogIoResult keeps as a preview.
constexpr std::size_t kBadLinePreview = 80;

/// CSV writes are staged in memory and flushed in chunks this large; the
/// one-operator<<-per-record pattern was measurably slow on multi-million
/// record logs.
constexpr std::size_t kCsvFlushBytes = std::size_t{1} << 18;

// Parses one CSV line into a record; returns false on malformed input.
bool parse_line(std::string_view line, RequestRecord& out) {
  std::uint64_t fields[5];
  int field = 0;
  const char* p = line.data();
  const char* end = p + line.size();
  while (field < 5) {
    // Trim leading spaces.
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    std::uint64_t value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{}) return false;
    fields[field++] = value;
    p = next;
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (field < 5) {
      if (p >= end || *p != ',') return false;
      ++p;
    }
  }
  out.server = static_cast<ServerIndex>(fields[0]);
  out.class_id = static_cast<ClassId>(fields[1]);
  out.arrival = TimePoint::from_micros(static_cast<std::int64_t>(fields[2]));
  out.departure = TimePoint::from_micros(static_cast<std::int64_t>(fields[3]));
  out.txn = fields[4];
  return out.departure >= out.arrival;
}

// Fast path for the overwhelmingly common line shape the writer itself
// produces: five bare decimal fields separated by single commas, ending at
// '\n' (or the buffer end), no padding, no sign, no carriage return. On
// success stores the record and returns the line terminator; on ANY
// irregularity — spaces, '\r', extra columns, a near-overflow value, a
// departure before its arrival — returns nullptr and the caller re-parses
// the line through consume_line/parse_line, so the fast path can only ever
// accept a subset of what parse_line accepts, with identical field values
// (parse_line also reads fields as u64 and narrows by cast).
// SWAR helpers for the fast field parser. `t` is an 8-byte chunk XORed with
// 0x30 repeated, so decimal-digit bytes hold their value 0..9.
// digit_boundary() returns a word whose per-byte high bit marks the bytes
// that are NOT digits; parse8() converts eight digit bytes (first digit in
// the lowest byte, i.e. straight from a little-endian load of the text) into
// the 8-digit number they spell. The multiply trick is the standard
// pairwise-merge: bytes -> 2-digit pairs, then one multiply-accumulate
// gathers the pairs weighted 1e6/1e4/1e2/1.
constexpr std::uint64_t kAsciiZeros = 0x3030303030303030ULL;

inline std::uint64_t digit_boundary(std::uint64_t t) {
  const std::uint64_t hi = t & 0x8080808080808080ULL;
  const std::uint64_t lo = t & 0x7F7F7F7F7F7F7F7FULL;
  return ((lo + 0x7676767676767676ULL) | hi) & 0x8080808080808080ULL;
}

constexpr std::uint64_t kPow10[9] = {1u,          10u,        100u,
                                     1'000u,      10'000u,    100'000u,
                                     1'000'000u,  10'000'000u, 100'000'000u};

inline std::uint64_t parse8(std::uint64_t t) {
  t = t * 10 + (t >> 8);  // byte 2i now holds the 2-digit pair d(2i)d(2i+1)
  const std::uint64_t mask = 0x000000FF000000FFULL;
  return ((t & mask) * 0x000F424000000064ULL +
          ((t >> 16) & mask) * 0x0000271000000001ULL) >>
         32;
}

// Parses one unsigned decimal field at `p`, stopping at the first non-digit.
// Returns the position after the digits, or nullptr when the field is empty
// or could overflow (the caller falls back to parse_line, which resolves
// such lines exactly like from_chars would).
inline const char* parse_field_fast(const char* p, const char* end,
                                    std::uint64_t& value) {
  // Any accumulated value above this could overflow when another 8-digit
  // chunk (or digit) is appended; genuine u64-range values near the cut are
  // rare enough to send down the slow path.
  constexpr std::uint64_t kCut = (~std::uint64_t{0} - 99'999'999) / 100'000'000;
  const char* const start = p;
  std::uint64_t v = 0;
  while (end - p >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    const std::uint64_t t = chunk ^ kAsciiZeros;
    const std::uint64_t boundary = digit_boundary(t);
    if (boundary == 0) {
      if (v > kCut) return nullptr;
      v = v * 100'000'000 + parse8(t);
      p += 8;
      continue;
    }
    const unsigned digits = static_cast<unsigned>(std::countr_zero(boundary)) / 8;
    if (digits == 0) {
      if (p == start) return nullptr;
      value = v;
      return p;
    }
    if (v > kCut) return nullptr;
    // Shift the k digit bytes up behind leading zero bytes: parse8 weighs
    // byte 0 heaviest, so the zeros contribute nothing and the non-digit
    // tail bytes fall off the top of the word. One multiply replaces the
    // k-iteration per-digit loop.
    v = v * kPow10[digits] + parse8(t << (8 * (8 - digits)));
    p += digits;
    value = v;
    return p;
  }
  while (p < end) {
    const unsigned d = static_cast<unsigned char>(*p) - unsigned{'0'};
    if (d > 9) break;
    if (v > kCut) return nullptr;
    v = v * 10 + d;
    ++p;
  }
  if (p == start) return nullptr;
  value = v;
  return p;
}

const char* parse_line_fast(const char* p, const char* end,
                            RequestRecord& out) {
  std::uint64_t fields[5];
  for (int f = 0; f < 5; ++f) {
    // server and class are single digits on almost every line; peel that
    // shape off before the chunked scan (its load+boundary machinery costs
    // more than the whole field).
    if (f < 2 && end - p >= 2 &&
        static_cast<unsigned>(p[0] - '0') <= 9 && p[1] == ',') {
      fields[f] = static_cast<unsigned>(p[0] - '0');
      p += 2;
      continue;
    }
    p = parse_field_fast(p, end, fields[f]);
    if (p == nullptr) return nullptr;  // empty field, space, sign, overflow
    if (f < 4) {
      if (p >= end || *p != ',') return nullptr;
      ++p;
    }
  }
  if (p < end && *p != '\n') return nullptr;  // '\r', spaces, extra columns
  const auto arrival = static_cast<std::int64_t>(fields[2]);
  const auto departure = static_cast<std::int64_t>(fields[3]);
  if (departure < arrival) return nullptr;
  out.server = static_cast<ServerIndex>(fields[0]);
  out.class_id = static_cast<ClassId>(fields[1]);
  out.arrival = TimePoint::from_micros(arrival);
  out.departure = TimePoint::from_micros(departure);
  out.txn = fields[4];
  return p;
}

// The canonical header fails numeric parsing like any garbage line;
// recognize it so it is skipped without being reported as the file's first
// malformed line.
bool is_header_line(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.substr(i).starts_with("server,");
}

// Classifies one line exactly like the sequential loader's loop body; both
// readers funnel through this so they can never drift apart.
template <typename Sink>
void consume_line(std::string_view line, Sink& sink) {
  if (line.empty() || line[0] == '#') {
    ++sink.skipped;
    return;
  }
  RequestRecord r;
  if (parse_line(line, r)) {
    sink.records.push_back(r);
  } else {
    ++sink.skipped;  // includes a header line, if present
    if (sink.first_bad_line == 0 && !is_header_line(line)) {
      sink.first_bad_line = sink.lines;
      sink.first_bad_text = std::string{line.substr(0, kBadLinePreview)};
    }
  }
}

// Per-shard (or whole-file) parse state, generic over the record container
// (RequestLog for the row loaders, RequestColumns for the columnar ones —
// consume_line only needs push_back(RequestRecord), which both provide).
template <typename Records>
struct ParseSinkT {
  Records records;
  std::size_t skipped = 0;
  std::size_t lines = 0;          // lines consumed so far (1-based current)
  std::size_t first_bad_line = 0; // within this sink's line numbering
  std::string first_bad_text;
};

using ParseSink = ParseSinkT<RequestLog>;

// Newline-density estimate of how many records a shard will produce, used to
// batch-fault the reservation up front; about half the cost of taking the
// page faults one by one mid-parse.
std::size_t estimate_shard_records(const char* p, std::size_t shard_bytes,
                                   std::size_t capacity) {
  const std::size_t sample = std::min<std::size_t>(shard_bytes, 256 * 1024);
  if (sample == 0) return 0;
  const auto sample_lines =
      static_cast<std::size_t>(std::count(p, p + sample, '\n')) + 1;
  return std::min(shard_bytes * sample_lines / sample + 1, capacity);
}

// Reserves a shard's output storage and pre-faults the estimated prefix.
void prime_shard_storage(RequestLog& records, const char* p,
                         std::size_t shard_bytes) {
  records.reserve(shard_bytes / 16 + 1);
  advise_huge_pages(records.data(),
                    records.capacity() * sizeof(RequestRecord));
  const std::size_t estimated =
      estimate_shard_records(p, shard_bytes, records.capacity());
  if (estimated > 0) {
    populate_pages_for_write(records.data(),
                             estimated * sizeof(RequestRecord));
  }
}

// Columnar flavor: the two timestamp columns dominate the footprint, so they
// get the huge-page advice and the pre-fault.
void prime_shard_storage(RequestColumns& columns, const char* p,
                         std::size_t shard_bytes) {
  columns.reserve(shard_bytes / 16 + 1);
  advise_huge_pages(columns.arrival_us.data(),
                    columns.arrival_us.capacity() * sizeof(std::int64_t));
  advise_huge_pages(columns.departure_us.data(),
                    columns.departure_us.capacity() * sizeof(std::int64_t));
  const std::size_t estimated =
      estimate_shard_records(p, shard_bytes, columns.arrival_us.capacity());
  if (estimated > 0) {
    populate_pages_for_write(columns.arrival_us.data(),
                             estimated * sizeof(std::int64_t));
    populate_pages_for_write(columns.departure_us.data(),
                             estimated * sizeof(std::int64_t));
  }
}

// Merge-step append of a later shard onto the adopted first shard.
void append_shard(RequestLog& dst, const RequestLog& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void append_shard(RequestColumns& dst, const RequestColumns& src) {
  dst.append(src.view());
}

// Sharded zero-copy CSV parse, generic over the result/record layout. Both
// public entry points instantiate this, so the row and columnar loaders
// share every classification and merge decision.
template <typename Result>
Result parse_request_log_csv_impl(std::string_view buffer, int shards) {
  Result result;
  result.ok = true;
  if (buffer.empty()) return result;

  auto& pool = shared_pool();
  std::size_t n_shards;
  if (shards > 0) {
    n_shards = static_cast<std::size_t>(shards);
  } else {
    // Don't fan tiny files out into sub-block shards, and don't fan out past
    // the physical cores: parsing is CPU-bound, so shards beyond that only
    // add merge work (on a 1-core host the right shard count is 1 no matter
    // how large TBD_THREADS is).
    constexpr std::size_t kMinShardBytes = std::size_t{1} << 16;
    const std::size_t cores =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    n_shards =
        std::min({static_cast<std::size_t>(pool.size()), cores,
                  std::max<std::size_t>(1, buffer.size() / kMinShardBytes)});
  }

  // Shard boundaries land just after a newline, so every shard holds whole
  // lines and their concatenation in shard order is exactly the file.
  std::vector<std::size_t> bounds(n_shards + 1, buffer.size());
  bounds[0] = 0;
  for (std::size_t k = 1; k < n_shards; ++k) {
    std::size_t target = std::max(buffer.size() * k / n_shards, bounds[k - 1]);
    const char* nl = static_cast<const char*>(
        std::memchr(buffer.data() + target, '\n', buffer.size() - target));
    bounds[k] = nl != nullptr
                    ? static_cast<std::size_t>(nl - buffer.data()) + 1
                    : buffer.size();
  }

  using Records = decltype(result.records);
  std::vector<ParseSinkT<Records>> parsed(n_shards);
  {
    TBD_SPAN("ingest.shard_parse");
    pool.parallel_for_indexed(n_shards, [&](std::size_t k) {
      TBD_SPAN("ingest.shard");
      ParseSinkT<Records>& sink = parsed[k];
      const char* p = buffer.data() + bounds[k];
      const char* end = buffer.data() + bounds[k + 1];
      prime_shard_storage(sink.records, p,
                          static_cast<std::size_t>(end - p));
      while (p < end) {
        ++sink.lines;
        RequestRecord r;
        // The fast scanner discovers the line end as a side effect, so the
        // memchr sweep is only paid for lines it could not handle.
        if (const char* nl = parse_line_fast(p, end, r)) {
          sink.records.push_back(r);
          p = nl < end ? nl + 1 : end;
          continue;
        }
        const char* nl = static_cast<const char*>(
            std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
        const char* line_end = nl != nullptr ? nl : end;
        consume_line(
            std::string_view{p, static_cast<std::size_t>(line_end - p)}, sink);
        p = nl != nullptr ? nl + 1 : end;
      }
    });
  }

  {
    TBD_SPAN("ingest.merge");
    std::size_t total = 0;
    for (const auto& s : parsed) total += s.records.size();
    // Adopt the first shard's vector wholesale — in the common single-shard
    // case the merge then costs nothing — and append the rest to it.
    result.records = std::move(parsed[0].records);
    result.records.reserve(total);
    std::size_t line_base = 0;
    bool first = true;
    for (auto& s : parsed) {
      if (!first) append_shard(result.records, s.records);
      first = false;
      result.skipped_lines += s.skipped;
      if (result.first_bad_line == 0 && s.first_bad_line != 0) {
        result.first_bad_line = line_base + s.first_bad_line;
        result.first_bad_text = std::move(s.first_bad_text);
      }
      line_base += s.lines;
    }
  }

  auto& registry = obs::Registry::global();
  registry.counter("ingest_csv_bytes_total").add(buffer.size());
  registry.counter("ingest_csv_records_total").add(result.records.size());
  registry.counter("ingest_csv_shards_total").add(n_shards);
  return result;
}

}  // namespace

LogIoResult load_request_log_csv(const std::string& path) {
  LogIoResult result;
  std::ifstream in{path};
  if (!in.is_open()) {
    result.error = "cannot open file";
    return result;
  }
  result.ok = true;
  ParseSink sink;
  std::string line;
  while (std::getline(in, line)) {
    ++sink.lines;
    consume_line(line, sink);
  }
  result.records = std::move(sink.records);
  result.skipped_lines = sink.skipped;
  result.first_bad_line = sink.first_bad_line;
  result.first_bad_text = std::move(sink.first_bad_text);
  return result;
}

LogIoResult parse_request_log_csv(std::string_view buffer, int shards) {
  return parse_request_log_csv_impl<LogIoResult>(buffer, shards);
}

ColumnarLogIoResult parse_request_log_csv_columns(std::string_view buffer,
                                                  int shards) {
  return parse_request_log_csv_impl<ColumnarLogIoResult>(buffer, shards);
}

namespace {

template <typename Result>
Result load_request_log_csv_sharded_impl(const std::string& path, int shards) {
  MappedFile file;
  {
    TBD_SPAN("ingest.read");
    file = MappedFile::open(path);
  }
  if (!file.ok()) {
    Result result;
    result.error = "cannot open file";
    return result;
  }
  if (file.empty()) {
    Result result;
    result.ok = true;
    return result;
  }
  return parse_request_log_csv_impl<Result>(
      std::string_view{file.data(), file.size()}, shards);
}

// Binary errors carry byte/record coordinates; fold them into the message so
// the front door is as specific as first_bad_line is for CSV ("truncated
// record stream at byte offset 48, record 1, ...").
template <typename BinResult>
std::string fold_bin_error(std::string error, const BinResult& bin) {
  return std::move(error) + " at byte offset " +
         std::to_string(bin.error_offset) + ", record " +
         std::to_string(bin.error_record) + ", file size " +
         std::to_string(bin.input_size);
}

// The v2 twin: segment coordinates instead of record coordinates.
std::string fold_v2_error(std::string error, const SegmentLogReadResult& v2) {
  return std::move(error) + " at byte offset " +
         std::to_string(v2.error_offset) + ", segment " +
         std::to_string(v2.error_segment) + ", file size " +
         std::to_string(v2.input_size);
}

// Maps a v2 decode into the front-door result shape. v2's recovery warning
// already carries its own coordinates, so it passes through verbatim.
template <typename Result>
Result from_v2(SegmentLogReadResult v2) {
  Result result;
  result.ok = v2.ok;
  result.error = std::move(v2.error);
  result.warning = std::move(v2.warning);
  if (!result.ok && v2.input_size > 0) {
    result.error = fold_v2_error(std::move(result.error), v2);
  }
  if constexpr (std::is_same_v<Result, ColumnarLogIoResult>) {
    result.records = std::move(v2.records);
  } else {
    result.records = v2.records.to_records();
  }
  return result;
}

}  // namespace

LogIoResult load_request_log_csv_sharded(const std::string& path, int shards) {
  return load_request_log_csv_sharded_impl<LogIoResult>(path, shards);
}

ColumnarLogIoResult load_request_log_csv_sharded_columns(
    const std::string& path, int shards) {
  return load_request_log_csv_sharded_impl<ColumnarLogIoResult>(path, shards);
}

LogIoResult load_request_log(const std::string& path) {
  if (sniff_request_log_bin(path)) {
    if (sniff_request_log_version(path) == kRequestLogV2Version) {
      return from_v2<LogIoResult>(load_request_log_v2(path));
    }
    auto bin = load_request_log_bin(path);
    LogIoResult result;
    result.ok = bin.ok;
    result.records = std::move(bin.records);
    result.error = std::move(bin.error);
    if (!result.ok && bin.input_size > 0) {
      result.error = fold_bin_error(std::move(result.error), bin);
    }
    return result;
  }
  return load_request_log_csv_sharded(path);
}

ColumnarLogIoResult load_request_log_columns(const std::string& path) {
  if (sniff_request_log_bin(path)) {
    if (sniff_request_log_version(path) == kRequestLogV2Version) {
      return from_v2<ColumnarLogIoResult>(load_request_log_v2(path));
    }
    auto bin = load_request_log_bin_columns(path);
    ColumnarLogIoResult result;
    result.ok = bin.ok;
    result.records = std::move(bin.records);
    result.error = std::move(bin.error);
    if (!result.ok && bin.input_size > 0) {
      result.error = fold_bin_error(std::move(result.error), bin);
    }
    return result;
  }
  return load_request_log_csv_sharded_columns(path);
}

namespace {

void append_csv_line(std::string& buffer, const RequestRecord& r) {
  char line[128];
  const int n = std::snprintf(
      line, sizeof line, "%u,%u,%lld,%lld,%llu\n", r.server, r.class_id,
      static_cast<long long>(r.arrival.micros()),
      static_cast<long long>(r.departure.micros()),
      static_cast<unsigned long long>(r.txn));
  buffer.append(line, static_cast<std::size_t>(n));
}

}  // namespace

std::string request_log_to_csv(const RequestLog& records) {
  std::string out;
  out.reserve(records.size() * 24 + 64);
  out += "server,class,arrival_us,departure_us,txn\n";
  for (const auto& r : records) append_csv_line(out, r);
  return out;
}

bool save_request_log_csv(const std::string& path, const RequestLog& records) {
  std::ofstream out{path, std::ios::trunc};
  if (!out.is_open()) return false;
  std::string buffer;
  buffer.reserve(kCsvFlushBytes + 128);
  buffer += "server,class,arrival_us,departure_us,txn\n";
  for (const auto& r : records) {
    append_csv_line(buffer, r);
    if (buffer.size() >= kCsvFlushBytes) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return static_cast<bool>(out);
}

}  // namespace tbd::trace
