#include "trace/log_io.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <string_view>

namespace tbd::trace {

namespace {

// Parses one CSV line into a record; returns false on malformed input.
bool parse_line(std::string_view line, RequestRecord& out) {
  std::uint64_t fields[5];
  int field = 0;
  const char* p = line.data();
  const char* end = p + line.size();
  while (field < 5) {
    // Trim leading spaces.
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    std::uint64_t value = 0;
    const auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{}) return false;
    fields[field++] = value;
    p = next;
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (field < 5) {
      if (p >= end || *p != ',') return false;
      ++p;
    }
  }
  out.server = static_cast<ServerIndex>(fields[0]);
  out.class_id = static_cast<ClassId>(fields[1]);
  out.arrival = TimePoint::from_micros(static_cast<std::int64_t>(fields[2]));
  out.departure = TimePoint::from_micros(static_cast<std::int64_t>(fields[3]));
  out.txn = fields[4];
  return out.departure >= out.arrival;
}

}  // namespace

LogIoResult load_request_log_csv(const std::string& path) {
  LogIoResult result;
  std::ifstream in{path};
  if (!in.is_open()) return result;
  result.ok = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      ++result.skipped_lines;
      continue;
    }
    RequestRecord r;
    if (parse_line(line, r)) {
      result.records.push_back(r);
    } else {
      ++result.skipped_lines;  // includes a header line, if present
    }
  }
  return result;
}

bool save_request_log_csv(const std::string& path, const RequestLog& records) {
  std::ofstream out{path, std::ios::trunc};
  if (!out.is_open()) return false;
  out << "server,class,arrival_us,departure_us,txn\n";
  char buf[128];
  for (const auto& r : records) {
    std::snprintf(buf, sizeof buf, "%u,%u,%lld,%lld,%llu\n", r.server,
                  r.class_id, static_cast<long long>(r.arrival.micros()),
                  static_cast<long long>(r.departure.micros()),
                  static_cast<unsigned long long>(r.txn));
    out << buf;
  }
  return static_cast<bool>(out);
}

}  // namespace tbd::trace
