#include "trace/request_columns.h"

#include <type_traits>

#include "trace/mapped_file.h"

namespace tbd::trace {

void RequestColumns::reserve(std::size_t n) {
  arrival_us.reserve(n);
  departure_us.reserve(n);
  server.reserve(n);
  class_id.reserve(n);
  txn.reserve(n);
}

void RequestColumns::resize(std::size_t n) {
  // Value-insert explicitly: the columns' DefaultInitAllocator makes plain
  // resize(n) leave grown elements uninitialized, and resize() promises
  // zero-fill.
  arrival_us.resize(n, 0);
  departure_us.resize(n, 0);
  server.resize(n, 0);
  class_id.resize(n, 0);
  txn.resize(n, 0);
}

void RequestColumns::resize_for_overwrite(std::size_t n) {
  reserve(n);
  const auto prepare = [n](auto& column) {
    using T = typename std::remove_reference_t<decltype(column)>::value_type;
    advise_huge_pages(column.data(), n * sizeof(T));
  };
  prepare(arrival_us);
  prepare(departure_us);
  prepare(server);
  prepare(class_id);
  prepare(txn);
  // Default-insert (uninitialized for these trivial element types): every
  // caller overwrites the rows it sized, so the only writes these columns
  // see before first read are the decoder's own.
  arrival_us.resize(n);
  departure_us.resize(n);
  server.resize(n);
  class_id.resize(n);
  txn.resize(n);
}

void RequestColumns::resize_prefaulted(std::size_t n) {
  resize_for_overwrite(n);
  const auto prepare = [n](auto& column) {
    using T = typename std::remove_reference_t<decltype(column)>::value_type;
    populate_pages_for_write(column.data(), n * sizeof(T));
  };
  prepare(arrival_us);
  prepare(departure_us);
  prepare(server);
  prepare(class_id);
  prepare(txn);
}

void RequestColumns::clear() {
  arrival_us.clear();
  departure_us.clear();
  server.clear();
  class_id.clear();
  txn.clear();
}

void RequestColumns::push_back(const RequestRecord& r) {
  arrival_us.push_back(r.arrival.micros());
  departure_us.push_back(r.departure.micros());
  server.push_back(r.server);
  class_id.push_back(r.class_id);
  txn.push_back(r.txn);
}

void RequestColumns::append(std::span<const RequestRecord> records) {
  reserve(size() + records.size());
  for (const RequestRecord& r : records) push_back(r);
}

void RequestColumns::append(const RequestColumnsView& columns) {
  arrival_us.insert(arrival_us.end(), columns.arrival_us.begin(),
                    columns.arrival_us.end());
  departure_us.insert(departure_us.end(), columns.departure_us.begin(),
                      columns.departure_us.end());
  server.insert(server.end(), columns.server.begin(), columns.server.end());
  class_id.insert(class_id.end(), columns.class_id.begin(),
                  columns.class_id.end());
  txn.insert(txn.end(), columns.txn.begin(), columns.txn.end());
}

RequestColumns RequestColumns::from_records(
    std::span<const RequestRecord> records) {
  RequestColumns columns;
  columns.append(records);
  return columns;
}

RequestLog RequestColumns::to_records() const {
  RequestLog log;
  log.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) log.push_back(record(i));
  return log;
}

}  // namespace tbd::trace
