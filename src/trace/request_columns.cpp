#include "trace/request_columns.h"

namespace tbd::trace {

void RequestColumns::reserve(std::size_t n) {
  arrival_us.reserve(n);
  departure_us.reserve(n);
  server.reserve(n);
  class_id.reserve(n);
  txn.reserve(n);
}

void RequestColumns::resize(std::size_t n) {
  arrival_us.resize(n);
  departure_us.resize(n);
  server.resize(n);
  class_id.resize(n);
  txn.resize(n);
}

void RequestColumns::clear() {
  arrival_us.clear();
  departure_us.clear();
  server.clear();
  class_id.clear();
  txn.clear();
}

void RequestColumns::push_back(const RequestRecord& r) {
  arrival_us.push_back(r.arrival.micros());
  departure_us.push_back(r.departure.micros());
  server.push_back(r.server);
  class_id.push_back(r.class_id);
  txn.push_back(r.txn);
}

void RequestColumns::append(std::span<const RequestRecord> records) {
  reserve(size() + records.size());
  for (const RequestRecord& r : records) push_back(r);
}

void RequestColumns::append(const RequestColumnsView& columns) {
  arrival_us.insert(arrival_us.end(), columns.arrival_us.begin(),
                    columns.arrival_us.end());
  departure_us.insert(departure_us.end(), columns.departure_us.begin(),
                      columns.departure_us.end());
  server.insert(server.end(), columns.server.begin(), columns.server.end());
  class_id.insert(class_id.end(), columns.class_id.begin(),
                  columns.class_id.end());
  txn.insert(txn.end(), columns.txn.begin(), columns.txn.end());
}

RequestColumns RequestColumns::from_records(
    std::span<const RequestRecord> records) {
  RequestColumns columns;
  columns.append(records);
  return columns;
}

RequestLog RequestColumns::to_records() const {
  RequestLog log;
  log.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) log.push_back(record(i));
  return log;
}

}  // namespace tbd::trace
