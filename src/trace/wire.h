// Internal: byte-level primitives for the TBDR v2 segment codec.
//
// Everything here is defined on uint64_t with wrap-around (mod 2^64)
// arithmetic, so delta and delta-of-delta chains are lossless for ANY input
// sequence — including adversarial timestamps near the int64 limits — and
// the decoder inverts them with plain wrapping adds. LEB128 varints carry
// the values; zigzag folds signed deltas into small unsigned ones first.
//
// The decode fast path reads one byte and falls through for the ~90% of
// production values that fit 7 bits; the continuation loop caps at 10 bytes
// (ceil(64/7)) and reports malformed input by returning nullptr, so a
// corrupt stream can never read past `end` or spin.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tbd::trace::wire {

/// Zigzag fold: small-magnitude signed values (either sign) become small
/// unsigned ones (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends the LEB128 encoding of `v` (1..10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// put_varint into a raw buffer the caller sized for the worst case
/// (kMaxVarintBytes per value); returns the position after the encoding.
/// This is the segment encoder's staging-buffer path — no capacity checks.
[[nodiscard]] inline char* put_varint_raw(char* p, std::uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

/// Longest LEB128 encoding of a uint64 (ceil(64 / 7)).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Bytes put_varint would append for `v`.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  // ceil(bit_width / 7), branchlessly: the encoder's size-planning pass
  // calls this once per value, so a shift loop would put a data-dependent
  // branch in an otherwise vectorizable reduction.
  return (static_cast<std::size_t>(std::bit_width(v | 1)) + 6) / 7;
}

/// Decodes one varint at `p`; returns the position after it, or nullptr when
/// the encoding runs past `end` or past the 10-byte limit. The single-byte
/// case is the branch the column loops are tuned around.
[[nodiscard]] inline const char* get_varint(const char* p, const char* end,
                                            std::uint64_t& out) {
  if (p >= end) return nullptr;
  std::uint64_t b = static_cast<unsigned char>(*p++);
  if (b < 0x80) {
    out = b;
    return p;
  }
  std::uint64_t v = b & 0x7F;
  unsigned shift = 7;
  while (shift < 70) {
    if (p >= end) return nullptr;
    b = static_cast<unsigned char>(*p++);
    v |= (b & 0x7F) << shift;
    if (b < 0x80) {
      out = v;
      return p;
    }
    shift += 7;
  }
  return nullptr;  // continuation bit on the 10th byte: malformed
}

/// get_varint without the per-byte end check: reads at most kMaxVarintBytes,
/// so it is safe whenever the caller proved that many bytes remain. Still
/// returns nullptr on a malformed (over-long) encoding. The column decode
/// loops run on this until they get within kMaxVarintBytes of the payload
/// end, then finish with the checked form.
[[nodiscard]] inline const char* get_varint_unchecked(const char* p,
                                                     std::uint64_t& out) {
  std::uint64_t b = static_cast<unsigned char>(*p++);
  if (b < 0x80) {
    out = b;
    return p;
  }
  std::uint64_t v = b & 0x7F;
  unsigned shift = 7;
  do {
    b = static_cast<unsigned char>(*p++);
    v |= (b & 0x7F) << shift;
    shift += 7;
  } while (b >= 0x80 && shift < 70);
  if (b >= 0x80) return nullptr;  // continuation bit on the 10th byte
  out = v;
  return p;
}

// ---- CRC-32C (Castagnoli) ---------------------------------------------------
// Slicing-by-8 table CRC: ~8 bytes per lookup round, no ISA extensions, fast
// enough that checksumming a segment costs a small fraction of decoding it.
// The tables are built once, lazily, and are immutable afterwards.

namespace detail {

struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        crc = (crc >> 8) ^ t[0][crc & 0xFF];
        t[s][i] = crc;
      }
    }
  }
};

inline const Crc32cTables& crc32c_tables() {
  static const Crc32cTables tables;
  return tables;
}

[[nodiscard]] inline std::uint32_t crc32c_sw(const void* data, std::size_t size,
                                             std::uint32_t seed) {
  const auto& t = crc32c_tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

#if defined(__x86_64__) && (defined(__clang__) || defined(__GNUC__))
#define TBD_TRACE_CRC32C_HW 1
/// SSE4.2 CRC32 instruction path (same reflected Castagnoli polynomial as
/// the tables, so the two are interchangeable bit for bit). Compiled with a
/// per-function target override and selected at runtime, so the binary still
/// runs on pre-Nehalem CPUs.
__attribute__((target("sse4.2"))) [[nodiscard]] inline std::uint32_t
crc32c_hw(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t crc = static_cast<std::uint32_t>(~seed);
  while (size >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc = __builtin_ia32_crc32di(crc, chunk);
    p += 8;
    size -= 8;
  }
  auto crc32 = static_cast<std::uint32_t>(crc);
  while (size-- > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return ~crc32;
}
#endif

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32c(const void* data, std::size_t size,
                                          std::uint32_t seed = 0) {
#ifdef TBD_TRACE_CRC32C_HW
  static const bool have_hw = __builtin_cpu_supports("sse4.2");
  if (have_hw) return detail::crc32c_hw(data, size, seed);
#endif
  return detail::crc32c_sw(data, size, seed);
}

}  // namespace tbd::trace::wire
