#include "trace/txn_tree.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "obs/span.h"

namespace tbd::trace {

namespace {

constexpr TimePoint kUnclosed = TimePoint::max();

double queue_weight(int k) {
  return k > 0 ? static_cast<double>(k - 1) / static_cast<double>(k) : 0.0;
}
double service_weight(int k) { return k > 0 ? 1.0 / static_cast<double>(k) : 0.0; }

}  // namespace

ConcurrencyProfile ConcurrencyProfile::build(
    std::span<const RequestRecord> records) {
  ConcurrencyProfile p;
  if (records.empty()) return p;
  // +1/-1 concurrency edges; at equal instants departures apply first, so a
  // visit is open on [arrival, departure) — the same half-open convention the
  // load calculator clips with.
  std::vector<std::pair<std::int64_t, int>> edges;
  edges.reserve(records.size() * 2);
  for (const RequestRecord& r : records) {
    edges.emplace_back(r.arrival.micros(), +1);
    edges.emplace_back(r.departure.micros(), -1);
  }
  std::sort(edges.begin(), edges.end());
  p.times_.reserve(edges.size());
  p.k_.reserve(edges.size());
  int k = 0;
  for (std::size_t i = 0; i < edges.size();) {
    const std::int64_t t = edges[i].first;
    while (i < edges.size() && edges[i].first == t) k += edges[i++].second;
    p.times_.push_back(t);
    p.k_.push_back(k);
  }
  p.queue_us_.assign(p.times_.size(), 0.0);
  p.service_us_.assign(p.times_.size(), 0.0);
  for (std::size_t i = 0; i + 1 < p.times_.size(); ++i) {
    const auto dt = static_cast<double>(p.times_[i + 1] - p.times_[i]);
    p.queue_us_[i + 1] = p.queue_us_[i] + dt * queue_weight(p.k_[i]);
    p.service_us_[i + 1] = p.service_us_[i] + dt * service_weight(p.k_[i]);
  }
  return p;
}

int ConcurrencyProfile::concurrency_at(TimePoint t) const {
  if (times_.empty()) return 0;
  const std::int64_t us = t.micros();
  if (us < times_.front() || us >= times_.back()) return 0;
  const auto it = std::upper_bound(times_.begin(), times_.end(), us);
  return k_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

ConcurrencyProfile::Split ConcurrencyProfile::split(TimePoint t0,
                                                    TimePoint t1) const {
  Split s;
  if (times_.empty()) return s;
  std::int64_t a = std::max(t0.micros(), times_.front());
  std::int64_t b = std::min(t1.micros(), times_.back());
  if (b <= a) return s;
  const auto piece = [&](std::int64_t t) {
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    return static_cast<std::size_t>(it - times_.begin()) - 1;
  };
  const std::size_t i0 = piece(a);
  const std::size_t i1 = piece(b == times_.back() ? b - 1 : b);
  const auto head = static_cast<double>(a - times_[i0]);
  const auto tail = static_cast<double>(b - times_[i1]);
  s.queue_us = (queue_us_[i1] - queue_us_[i0]) - head * queue_weight(k_[i0]) +
               tail * queue_weight(k_[i1]);
  s.service_us = (service_us_[i1] - service_us_[i0]) -
                 head * service_weight(k_[i0]) + tail * service_weight(k_[i1]);
  return s;
}

ProfileMap build_profiles(std::span<const RequestRecord> records) {
  std::map<ServerIndex, RequestLog> by_server;
  for (const RequestRecord& r : records) by_server[r.server].push_back(r);
  ProfileMap profiles;
  for (const auto& [server, log] : by_server) {
    profiles.emplace(server, ConcurrencyProfile::build(log));
  }
  return profiles;
}

Duration TxnTree::latency() const {
  TimePoint first = TimePoint::max();
  TimePoint last;
  bool any = false;
  for (const TxnVisit& v : visits) {
    if (v.parent >= 0) continue;
    first = std::min(first, v.arrival);
    last = std::max(last, v.departure);
    any = true;
  }
  return any ? last - first : Duration{};
}

ServerIndex TxnTree::critical_server() const {
  std::map<ServerIndex, std::int64_t> share;
  for (const PathSegment& seg : critical_path) {
    share[visits[static_cast<std::size_t>(seg.visit)].server] +=
        (seg.end - seg.start).micros();
  }
  ServerIndex best = 0;
  std::int64_t best_us = -1;
  for (const auto& [server, us] : share) {
    if (us > best_us) {
      best = server;
      best_us = us;
    }
  }
  return best;
}

namespace {

TimePoint clamp_tp(TimePoint t, TimePoint lo, TimePoint hi) {
  return std::max(lo, std::min(t, hi));
}

/// Depth-first walk emitting the deepest-active-visit segments of `vi`
/// within [lo, hi] (the slice of the parent the visit occupies).
void path_segments(TxnTree& tree, std::int32_t vi, TimePoint lo, TimePoint hi) {
  const TxnVisit& v = tree.visits[static_cast<std::size_t>(vi)];
  const TimePoint a = clamp_tp(v.arrival, lo, hi);
  const TimePoint d = clamp_tp(v.departure, a, hi);
  TimePoint cursor = a;
  for (const std::int32_t ci : v.children) {
    const TxnVisit& c = tree.visits[static_cast<std::size_t>(ci)];
    const TimePoint cs = clamp_tp(c.arrival, cursor, d);
    const TimePoint ce = clamp_tp(c.departure, cs, d);
    if (cs > cursor) tree.critical_path.push_back({vi, cursor, cs});
    path_segments(tree, ci, cs, ce);
    cursor = std::max(cursor, ce);
  }
  if (cursor < d) tree.critical_path.push_back({vi, cursor, d});
}

/// Fills children, depth, concurrency-at-arrival, the critical path, and the
/// per-visit queue/service split. Expects visits + parent edges set.
void finalize_tree(TxnTree& tree, const ProfileMap& profiles) {
  for (std::size_t i = 0; i < tree.visits.size(); ++i) {
    const std::int32_t p = tree.visits[i].parent;
    if (p >= 0) {
      tree.visits[static_cast<std::size_t>(p)].children.push_back(
          static_cast<std::int32_t>(i));
    }
  }
  // Children issue in arrival order (server-side processing is sequential).
  for (TxnVisit& v : tree.visits) {
    std::sort(v.children.begin(), v.children.end(),
              [&](std::int32_t x, std::int32_t y) {
                const auto& a = tree.visits[static_cast<std::size_t>(x)];
                const auto& b = tree.visits[static_cast<std::size_t>(y)];
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                return x < y;
              });
  }
  for (std::size_t i = 0; i < tree.visits.size(); ++i) {
    // Parents may appear after children in visit order (reconstructed
    // trees); walk the chain instead of relying on topological order.
    std::int32_t depth = 0;
    for (std::int32_t p = tree.visits[i].parent; p >= 0;
         p = tree.visits[static_cast<std::size_t>(p)].parent) {
      ++depth;
    }
    tree.visits[i].depth = depth;
    const auto it = profiles.find(tree.visits[i].server);
    if (it != profiles.end()) {
      tree.visits[i].concurrency_at_arrival =
          std::max(0, it->second.concurrency_at(tree.visits[i].arrival) - 1);
    }
  }
  for (std::size_t i = 0; i < tree.visits.size(); ++i) {
    if (tree.visits[i].parent < 0) {
      path_segments(tree, static_cast<std::int32_t>(i), tree.visits[i].arrival,
                    tree.visits[i].departure);
    }
  }
  for (const PathSegment& seg : tree.critical_path) {
    TxnVisit& v = tree.visits[static_cast<std::size_t>(seg.visit)];
    const auto it = profiles.find(v.server);
    if (it == profiles.end()) continue;
    const auto sp = it->second.split(seg.start, seg.end);
    v.queue_us += sp.queue_us;
    v.service_us += sp.service_us;
  }
}

void sort_assembly(TxnAssembly& out) {
  std::sort(out.txns.begin(), out.txns.end(),
            [](const TxnTree& a, const TxnTree& b) {
              const TimePoint ta = a.visits.front().arrival;
              const TimePoint tb = b.visits.front().arrival;
              if (ta != tb) return ta < tb;
              return a.id < b.id;
            });
}

}  // namespace

TxnAssembly assemble_transactions(std::span<const RequestRecord> records,
                                  const ProfileMap* profiles) {
  TBD_SPAN("flight.assemble");
  ProfileMap local;
  if (!profiles) {
    local = build_profiles(records);
    profiles = &local;
  }
  TxnAssembly out;
  std::map<TxnId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < records.size(); ++i) {
    groups[records[i].txn].push_back(i);
  }
  out.txns.reserve(groups.size());
  for (auto& [txn, idx] : groups) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
      const RequestRecord& a = records[x];
      const RequestRecord& b = records[y];
      if (a.arrival != b.arrival) return a.arrival < b.arrival;
      if (a.departure != b.departure) return a.departure > b.departure;
      if (a.server != b.server) return a.server < b.server;
      return x < y;
    });
    TxnTree tree;
    tree.id = txn;
    tree.visits.reserve(idx.size());
    std::vector<std::int32_t> stack;  // enclosing visits, innermost last
    for (const std::size_t ri : idx) {
      const RequestRecord& r = records[ri];
      while (!stack.empty() &&
             tree.visits[static_cast<std::size_t>(stack.back())].departure <=
                 r.arrival) {
        stack.pop_back();
      }
      TxnVisit v;
      v.server = r.server;
      v.class_id = r.class_id;
      v.arrival = r.arrival;
      v.departure = r.departure;
      if (!stack.empty()) {
        const TxnVisit& top =
            tree.visits[static_cast<std::size_t>(stack.back())];
        if (top.arrival <= r.arrival && top.departure >= r.departure) {
          v.parent = stack.back();
        } else {
          // Overlaps the innermost open visit without nesting inside it:
          // containment is broken, keep the visit as an extra root.
          v.orphan = true;
          ++out.orphan_visits;
        }
      }
      const auto vi = static_cast<std::int32_t>(tree.visits.size());
      tree.visits.push_back(std::move(v));
      stack.push_back(vi);
      ++out.visits;
    }
    finalize_tree(tree, *profiles);
    out.txns.push_back(std::move(tree));
  }
  sort_assembly(out);
  return out;
}

TxnAssembly assemble_transactions(std::span<const ReconstructedVisit> visits,
                                  VisitView view, const ProfileMap* profiles) {
  TBD_SPAN("flight.assemble");
  ProfileMap local;
  if (!profiles) {
    std::vector<RequestRecord> merged;
    for (const auto& [server, log] : logs_from_visits(visits)) {
      merged.insert(merged.end(), log.begin(), log.end());
    }
    local = build_profiles(merged);
    profiles = &local;
  }
  TxnAssembly out;

  const auto closed = [&](std::size_t i) {
    return visits[i].departure != kUnclosed;
  };
  // Parent edge per visit in span indices (-1 = root), per the chosen view.
  std::vector<std::int64_t> parent(visits.size(), -1);
  std::unordered_map<std::uint64_t, std::size_t> by_truth_id;
  if (view == VisitView::kGroundTruth) {
    by_truth_id.reserve(visits.size());
    for (std::size_t i = 0; i < visits.size(); ++i) {
      by_truth_id.emplace(visits[i].truth_visit, i);
    }
  }
  for (std::size_t i = 0; i < visits.size(); ++i) {
    if (view == VisitView::kBlackBox) {
      parent[i] = visits[i].parent;
    } else if (visits[i].truth_parent_visit != 0) {
      const auto it = by_truth_id.find(visits[i].truth_parent_visit);
      parent[i] = it != by_truth_id.end() ? static_cast<std::int64_t>(it->second)
                                          : -2;  // parent never captured
    }
  }

  // A visit roots its own subtree when it has no parent edge, or its parent
  // was dropped (unclosed) or never captured.
  std::vector<bool> keep(visits.size(), false);
  std::vector<bool> orphan(visits.size(), false);
  for (std::size_t i = 0; i < visits.size(); ++i) {
    if (!closed(i)) {
      ++out.dropped_unclosed;
      continue;
    }
    keep[i] = true;
    const std::int64_t p = parent[i];
    const bool broken =
        p == -2 || (p >= 0 && !closed(static_cast<std::size_t>(p)));
    if (broken) {
      parent[i] = -1;
      orphan[i] = true;
      ++out.orphan_visits;
    }
  }

  // Group kept visits by the root of their parent chain.
  std::vector<std::int64_t> root_of(visits.size(), -1);
  const auto find_root = [&](std::size_t i) {
    std::size_t r = i;
    while (parent[r] >= 0) r = static_cast<std::size_t>(parent[r]);
    return static_cast<std::int64_t>(r);
  };
  std::map<std::int64_t, std::vector<std::size_t>> groups;  // by root index
  for (std::size_t i = 0; i < visits.size(); ++i) {
    if (!keep[i]) continue;
    root_of[i] = find_root(i);
    groups[root_of[i]].push_back(i);
  }
  // Ground truth: merge same-txn roots into one tree (several orphan roots
  // of one transaction still tell one story).
  std::map<TxnId, std::vector<std::size_t>> merged_groups;
  if (view == VisitView::kGroundTruth) {
    for (auto& [root, members] : groups) {
      auto& bucket = merged_groups[visits[static_cast<std::size_t>(root)].truth_txn];
      bucket.insert(bucket.end(), members.begin(), members.end());
    }
  }

  const auto build_group = [&](TxnId id, std::vector<std::size_t>& members) {
    std::sort(members.begin(), members.end(),
              [&](std::size_t x, std::size_t y) {
                const ReconstructedVisit& a = visits[x];
                const ReconstructedVisit& b = visits[y];
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.departure != b.departure) return a.departure > b.departure;
                return x < y;
              });
    std::unordered_map<std::size_t, std::int32_t> to_local;
    to_local.reserve(members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
      to_local.emplace(members[j], static_cast<std::int32_t>(j));
    }
    TxnTree tree;
    tree.id = id;
    tree.visits.reserve(members.size());
    for (const std::size_t i : members) {
      const ReconstructedVisit& rv = visits[i];
      TxnVisit v;
      v.server = rv.server >= 1 ? rv.server - 1 : 0;
      v.class_id = rv.class_id;
      v.arrival = rv.arrival;
      v.departure = rv.departure;
      v.orphan = orphan[i];
      if (parent[i] >= 0) {
        v.parent = to_local.at(static_cast<std::size_t>(parent[i]));
      }
      tree.visits.push_back(std::move(v));
      ++out.visits;
    }
    finalize_tree(tree, *profiles);
    out.txns.push_back(std::move(tree));
  };

  if (view == VisitView::kGroundTruth) {
    for (auto& [txn, members] : merged_groups) build_group(txn, members);
  } else {
    for (auto& [root, members] : groups) {
      const ReconstructedVisit& rv = visits[static_cast<std::size_t>(root)];
      // Label with the carried ground-truth id when present (display only);
      // otherwise number by root order.
      build_group(rv.truth_txn != 0 ? rv.truth_txn
                                    : static_cast<TxnId>(root) + 1,
                  members);
    }
  }
  sort_assembly(out);
  return out;
}

std::map<ServerIndex, RequestLog> logs_from_visits(
    std::span<const ReconstructedVisit> visits) {
  std::map<ServerIndex, RequestLog> logs;
  for (const ReconstructedVisit& v : visits) {
    if (v.departure == kUnclosed) continue;
    RequestRecord r;
    r.server = v.server >= 1 ? v.server - 1 : 0;
    r.class_id = v.class_id;
    r.arrival = v.arrival;
    r.departure = v.departure;
    r.txn = v.truth_txn;
    logs[r.server].push_back(r);
  }
  return logs;
}

}  // namespace tbd::trace
