// Black-box transaction trace reconstruction (the SysViz substitute).
//
// Input: the time-ordered message stream from the tap, WITHOUT ground-truth
// ids — only (timestamp, src, dst, connection, kind, class). Output: the
// tree of server visits for every client transaction, i.e. which downstream
// call belongs to which in-flight parent request.
//
// Algorithm (online, single pass):
//  1. Request/response matching per connection. Connections are checked out
//     of pools exclusively for one call, so each connection has at most one
//     outstanding request; a response on connection c closes the visit that
//     the last request on c opened. (This mirrors HTTP/1.x keep-alive and
//     pooled JDBC without pipelining.)
//  2. Parent attribution by time containment + readiness. A request leaving
//     server A at time t must belong to a visit that is open on A at t and
//     has no outstanding downstream call of its own (server-side processing
//     of one request is sequential, Figure 4). Among those candidates we
//     pick the one that most recently became "ready" (arrived, or had its
//     previous child call return) — the LIFO heuristic: the request that
//     just got its query result back is the one most likely to issue the
//     next query.
//
// The paper reports >99% reconstruction accuracy for a 4-tier application
// under high concurrency; `score_against_truth` measures the same metric
// here (fraction of child visits attributed to the correct parent).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "trace/records.h"

namespace tbd::trace {

/// One reconstructed server visit.
struct ReconstructedVisit {
  NodeId server = 0;           // node id of the visited server
  ClassId class_id = 0;
  TimePoint arrival;
  TimePoint departure;
  std::int64_t parent = -1;    // index into visits(); -1 = transaction root
  // Ground truth captured for scoring only (copied from the opening message;
  // the reconstruction logic above never reads these).
  TxnId truth_txn = 0;
  std::uint64_t truth_visit = 0;
  std::uint64_t truth_parent_visit = 0;
};

struct ReconstructionStats {
  std::uint64_t visits = 0;             // closed visits reconstructed
  std::uint64_t roots = 0;              // client-facing visits
  std::uint64_t unmatched_responses = 0;  // responses with no pending request
  std::uint64_t orphan_children = 0;    // child calls with no open parent
};

/// Accuracy of a reconstruction against the simulator's ground truth.
struct AccuracyReport {
  std::uint64_t child_visits = 0;     // non-root visits scored
  std::uint64_t correct_edges = 0;    // parent attributed correctly
  std::uint64_t transactions = 0;     // distinct ground-truth transactions
  std::uint64_t perfect_transactions = 0;  // every edge correct
  [[nodiscard]] double edge_accuracy() const {
    return child_visits ? static_cast<double>(correct_edges) / static_cast<double>(child_visits)
                        : 1.0;
  }
  [[nodiscard]] double transaction_accuracy() const {
    return transactions
               ? static_cast<double>(perfect_transactions) / static_cast<double>(transactions)
               : 1.0;
  }
};

/// Parent-attribution policy among ready candidate visits.
///
///  kLeastRecentlyReady (FIFO, default): under processor sharing, requests
///      that became ready earlier finish their compute segment earlier, so
///      the earliest-ready candidate is the most likely issuer. Most robust
///      across load levels (see bench_ablations).
///  kMostRecentlyReady (LIFO): the naive "just got its result" heuristic;
///      kept for the ablation benchmark, where FIFO beats it soundly.
///  kExpectedElapsed: statistical refinement — learn, per (server, class),
///      an EWMA of the (processor-sharing-normalized) elapsed time between
///      a visit becoming ready and it issuing its next call; attribute each
///      call to the candidate whose elapsed time best matches its class's
///      expectation. The regression flavour of black-box reconstruction the
///      SysViz class of tools uses; ties FIFO at low load.
///
/// All policies share two content-derived filters: a parent must carry the
/// child's request class, and (softly) must not have issued more child
/// calls than its class's learned fanout.
enum class ParentPick : std::uint8_t {
  kMostRecentlyReady,
  kLeastRecentlyReady,
  kExpectedElapsed,
};

class TraceReconstructor {
 public:
  /// `client_node`: node id whose outgoing requests start transactions.
  explicit TraceReconstructor(NodeId client_node = 0,
                              ParentPick policy = ParentPick::kLeastRecentlyReady)
      : client_node_{client_node}, policy_{policy} {}

  /// Consumes a time-ordered message stream and reconstructs visits.
  /// May be called repeatedly to process a stream in chunks.
  void process(std::span<const Message> messages);

  /// All visits closed so far (arrival and departure both observed).
  [[nodiscard]] const std::vector<ReconstructedVisit>& visits() const { return visits_; }
  [[nodiscard]] const ReconstructionStats& stats() const { return stats_; }

  /// Scores parent attribution against the ground truth carried in the
  /// messages. Call after process().
  [[nodiscard]] AccuracyReport score_against_truth() const;

 private:
  struct OpenVisit {
    std::int64_t index;       // into visits_
    NodeId server;
    std::int64_t parent_slot = -1;        // open_ slot of the parent visit
    std::int64_t outstanding_child = -1;  // visits_ index of in-flight child
    TimePoint ready_since;    // arrival or last child-return time
    int children_issued = 0;
    bool closed = false;
  };
  struct PendingRequest {
    std::int64_t open_slot;   // into open_
  };

  /// Returns the open_ slot of the chosen parent, or -1. `cls` is the
  /// request class observed on the child message: a parent visit must carry
  /// the same class (observable from message content in real captures).
  std::int64_t pick_parent(NodeId server, TimePoint at, ClassId cls);

  /// EWMA of ready->call elapsed time for (node, class); negative = unseen.
  double& elapsed_model(NodeId node, ClassId cls);
  void learn_elapsed(NodeId node, ClassId cls, double elapsed_us);
  /// EWMA of child calls per visit for (node, class); negative = unseen.
  double& fanout_model(NodeId node, ClassId cls);

  NodeId client_node_;
  ParentPick policy_ = ParentPick::kExpectedElapsed;
  std::vector<ReconstructedVisit> visits_;
  std::vector<std::vector<double>> elapsed_mu_;  // [node][class], -1 unseen
  std::vector<std::vector<double>> fanout_mu_;   // [node][class], -1 unseen
  double global_elapsed_mu_ = -1.0;
  std::vector<OpenVisit> open_;                     // slot table, lazily compacted
  std::vector<std::vector<std::int64_t>> open_by_server_;  // per-node open slots
  std::vector<std::optional<PendingRequest>> conn_pending_;  // per connection id
  ReconstructionStats stats_;
};

}  // namespace tbd::trace
