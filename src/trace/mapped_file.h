// Internal: read-only byte window over a whole file.
//
// On POSIX hosts the window is a private mmap (MAP_POPULATE where available),
// so loaders parse straight out of the page cache with no intermediate copy —
// this is the "zero-copy" half of the fast ingestion path. Elsewhere, or when
// mapping fails, the file is block-read into a heap buffer; callers see the
// same data()/size() window either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define TBD_TRACE_HAVE_MMAP 1
#endif

namespace tbd::trace {

/// Asks the kernel to back [data, data+size) with transparent huge pages.
/// No-op outside Linux. The ingest loaders call this on freshly reserved
/// multi-hundred-MB record buffers: with 4 KiB pages the first touch of such
/// a buffer takes tens of thousands of page faults, which is a measurable
/// fraction of the whole load at binary-format bandwidths.
inline void advise_huge_pages(void* data, std::size_t size) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::uintptr_t kPage = 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t begin = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t end = (addr + size) & ~(kPage - 1);
  if (end > begin) {
    ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)size;
#endif
}

/// Pre-faults [data, data+size) for writing in one batched kernel pass
/// (MADV_POPULATE_WRITE; no-op where unavailable). Materializing fresh anon
/// memory through ~40k demand faults costs roughly twice what the batched
/// populate does on current kernels, so the loaders call this on record
/// buffers they are about to fill. Size may be an estimate: populating too
/// little leaves ordinary demand faulting for the rest, populating the
/// reservation's tail merely wastes zeroed pages.
inline void populate_pages_for_write(void* data, std::size_t size) {
#if defined(__linux__) && defined(MADV_POPULATE_WRITE)
  constexpr std::uintptr_t kPage = 4096;
  const auto addr = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t begin = (addr + kPage - 1) & ~(kPage - 1);
  const std::uintptr_t end = (addr + size) & ~(kPage - 1);
  if (end > begin) {
    ::madvise(reinterpret_cast<void*>(begin), end - begin,
              MADV_POPULATE_WRITE);
  }
#else
  (void)data;
  (void)size;
#endif
}

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    ok_ = other.ok_;
    heap_ = std::move(other.heap_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.ok_ = false;
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { release(); }

  [[nodiscard]] static MappedFile open(const std::string& path) {
    MappedFile f;
#if TBD_TRACE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        const auto size = static_cast<std::size_t>(st.st_size);
        if (size == 0) {
          f.ok_ = true;
          ::close(fd);
          return f;
        }
        int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
        flags |= MAP_POPULATE;
#endif
        void* map = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
        if (map != MAP_FAILED) {
          f.data_ = static_cast<const char*>(map);
          f.size_ = size;
          f.mapped_ = true;
          f.ok_ = true;
          ::close(fd);
          return f;
        }
      }
      ::close(fd);
    }
    // Fall through to the portable read below (e.g. a file system that
    // refuses mmap); a missing file fails there too.
#endif
    std::ifstream in{path, std::ios::binary | std::ios::ate};
    if (!in.is_open()) return f;
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    if (size > 0) {
      f.heap_.reset(new char[size]);  // uninitialized; read fills it
      in.read(f.heap_.get(), static_cast<std::streamsize>(size));
      if (!in) return f;
      f.data_ = f.heap_.get();
      f.size_ = size;
    }
    f.ok_ = true;
    return f;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  void release() {
#if TBD_TRACE_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<char*>(data_), size_);
#endif
    heap_.reset();
  }

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  bool ok_ = false;
  std::unique_ptr<char[]> heap_;
};

}  // namespace tbd::trace
