// Columnar (SoA) layout of per-server request records.
//
// RequestRecord (records.h) is the row-oriented interchange struct; the
// analysis core, however, only ever streams *columns*: the load sweep reads
// arrival+departure, throughput binning reads departure+class_id, and the
// txn column is dead weight in every sweep. RequestColumns stores each field
// in its own contiguous array so a multi-granularity analysis pass touches
// only the bytes it needs — at 50 ms grids this is the difference between
// streaming 32 B/record (AoS) and 16-20 B/record per pass, and it is the
// layout TBDR v2 segments will store natively (docs/file-formats.md).
//
// Invariant: all five columns always have the same length; row i of the
// columns is exactly the RequestRecord it was converted from. Conversion is
// lossless in both directions (to_records(from_records(log)) == log), which
// the differential-oracle suite pins bit-for-bit.
//
// RequestColumnsView is the non-owning read view the analysis entry points
// take (the spans analogue of std::span<const RequestRecord>).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "trace/records.h"

namespace tbd::trace {

namespace detail {

/// std::allocator that default-initializes on default-insertion — for the
/// trivial column element types this leaves resize-grown memory
/// uninitialized instead of zero-filling it. The bulk decoders overwrite
/// every row they size, so the value-init memset is a pure extra pass over
/// the output (a third of the loaders' write traffic at 32 B/record);
/// RequestColumns::resize keeps the zero-fill contract by value-inserting
/// explicitly, and only resize_prefaulted exposes the uninitialized path.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  using std::allocator<T>::allocator;

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  template <typename U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Column storage: std::vector in every observable way (same layout,
/// iterators, data()/size()), except that default-insertion leaves trivial
/// elements uninitialized (see DefaultInitAllocator).
template <typename T>
using ColumnVector = std::vector<T, detail::DefaultInitAllocator<T>>;

/// Non-owning view over one request log in columnar layout. All spans have
/// equal length.
struct RequestColumnsView {
  std::span<const std::int64_t> arrival_us;
  std::span<const std::int64_t> departure_us;
  std::span<const ServerIndex> server;
  std::span<const ClassId> class_id;
  std::span<const TxnId> txn;

  [[nodiscard]] std::size_t size() const { return arrival_us.size(); }
  [[nodiscard]] bool empty() const { return arrival_us.empty(); }

  /// Gathers row `i` back into the row struct.
  [[nodiscard]] RequestRecord record(std::size_t i) const {
    RequestRecord r;
    r.server = server[i];
    r.class_id = class_id[i];
    r.arrival = TimePoint::from_micros(arrival_us[i]);
    r.departure = TimePoint::from_micros(departure_us[i]);
    r.txn = txn[i];
    return r;
  }

  /// Rows [offset, offset + n) as a view (no copy).
  [[nodiscard]] RequestColumnsView subview(std::size_t offset,
                                           std::size_t n) const {
    return RequestColumnsView{arrival_us.subspan(offset, n),
                              departure_us.subspan(offset, n),
                              server.subspan(offset, n),
                              class_id.subspan(offset, n),
                              txn.subspan(offset, n)};
  }
};

/// Owning columnar request log with cheap AoS <-> SoA converters. The column
/// vectors are public so loaders can decode straight into them; every
/// mutator here keeps the equal-length invariant.
struct RequestColumns {
  ColumnVector<std::int64_t> arrival_us;
  ColumnVector<std::int64_t> departure_us;
  ColumnVector<ServerIndex> server;
  ColumnVector<ClassId> class_id;
  ColumnVector<TxnId> txn;

  [[nodiscard]] std::size_t size() const { return arrival_us.size(); }
  [[nodiscard]] bool empty() const { return arrival_us.empty(); }

  void reserve(std::size_t n);
  /// Grown rows are zero-filled, exactly like std::vector::resize.
  void resize(std::size_t n);
  /// resize(n) for bulk decoders that overwrite every row: reserves first,
  /// asks the kernel for huge pages (mapped_file.h), then sizes the vectors
  /// WITHOUT faulting or zero-filling a single page. Grown rows are
  /// UNINITIALIZED and their pages not yet materialized; the caller must
  /// overwrite every row it sized. Parallel decoders pair this with
  /// populate_pages_for_write on each worker's own output slice just before
  /// writing it: the kernel's unavoidable zeroing of fresh pages then
  /// happens on a cache-sized slice that the decode overwrites while it is
  /// still hot, so DRAM sees one write-back of final data instead of a
  /// zero pass plus a read-for-ownership plus a write-back.
  void resize_for_overwrite(std::size_t n);
  /// resize_for_overwrite(n) plus one batched pre-fault of all five columns
  /// (populate_pages_for_write). For sequential decoders with no natural
  /// slice structure: still saves the zero-fill memset of resize() and the
  /// ~2x cost of demand-faulting page by page.
  void resize_prefaulted(std::size_t n);
  void clear();

  void push_back(const RequestRecord& r);
  /// Appends rows, transposing AoS -> SoA.
  void append(std::span<const RequestRecord> records);
  /// Appends columns column-wise (the sharded loaders' merge step).
  void append(const RequestColumnsView& columns);

  [[nodiscard]] RequestRecord record(std::size_t i) const {
    return view().record(i);
  }

  /// AoS -> SoA (one transposition; the analysis core then never touches
  /// the row layout again).
  [[nodiscard]] static RequestColumns from_records(
      std::span<const RequestRecord> records);

  /// SoA -> AoS (for consumers that still want rows, e.g. the flight
  /// recorder's transaction assembly).
  [[nodiscard]] RequestLog to_records() const;

  [[nodiscard]] RequestColumnsView view() const {
    return RequestColumnsView{arrival_us, departure_us, server, class_id, txn};
  }
  /// RequestColumns binds anywhere a RequestColumnsView is expected.
  operator RequestColumnsView() const { return view(); }  // NOLINT(google-explicit-constructor)

  bool operator==(const RequestColumns&) const = default;
};

}  // namespace tbd::trace
