#include "trace/capture_file.h"

#include <cstring>
#include <fstream>

#include "trace/mapped_file.h"

namespace tbd::trace {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'D', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kRecordSize = 8 + 4 + 4 + 4 + 1 + 4 + 4 + 8 + 8 + 8;

// Little-endian scribblers; portable regardless of host endianness.
template <typename T>
void put(char*& p, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *p++ = static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T take(const char*& p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++)) << (8 * i);
  }
  return static_cast<T>(v);
}

void encode_message(char* p, const Message& m) {
  put<std::int64_t>(p, m.at.micros());
  put<std::uint32_t>(p, m.src);
  put<std::uint32_t>(p, m.dst);
  put<std::uint32_t>(p, m.conn);
  put<std::uint8_t>(p, static_cast<std::uint8_t>(m.kind));
  put<std::uint32_t>(p, m.class_id);
  put<std::uint32_t>(p, m.bytes);
  put<std::uint64_t>(p, m.txn);
  put<std::uint64_t>(p, m.visit);
  put<std::uint64_t>(p, m.parent_visit);
}

void encode_header(char (&header)[kHeaderSize], std::uint64_t count) {
  char* p = header;
  std::memcpy(p, kMagic, 4);
  p += 4;
  put<std::uint32_t>(p, kVersion);
  put<std::uint64_t>(p, count);
}

}  // namespace

bool save_capture(const std::string& path,
                  const std::vector<Message>& messages) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open()) return false;

  char header[kHeaderSize];
  encode_header(header, messages.size());
  out.write(header, sizeof header);

  std::vector<char> buffer(kRecordSize);
  for (const Message& m : messages) {
    encode_message(buffer.data(), m);
    out.write(buffer.data(), static_cast<std::streamsize>(kRecordSize));
  }
  return static_cast<bool>(out);
}

std::string encode_capture(const std::vector<Message>& messages) {
  std::string out(kHeaderSize + messages.size() * kRecordSize, '\0');
  char header[kHeaderSize];
  encode_header(header, messages.size());
  std::memcpy(out.data(), header, kHeaderSize);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    encode_message(out.data() + kHeaderSize + i * kRecordSize, messages[i]);
  }
  return out;
}

CaptureReadResult decode_capture(std::string_view bytes) {
  CaptureReadResult result;
  result.input_size = bytes.size();
  if (bytes.size() < kHeaderSize) {
    result.error = "truncated header";
    result.error_offset = bytes.size();
    return result;
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    result.error = "bad magic";
    result.error_offset = 0;
    return result;
  }
  const char* p = bytes.data() + 4;
  const auto version = take<std::uint32_t>(p);
  if (version != kVersion) {
    result.error = "unsupported version";
    result.error_offset = 4;
    return result;
  }
  const auto count = take<std::uint64_t>(p);
  result.header_count = count;
  // Validate the count against the buffer size BEFORE allocating: a corrupt
  // header must not be able to over-allocate (or silently tolerate trailing
  // junk the writer never produced). The division also guards the
  // count * kRecordSize multiply from overflow.
  const std::uint64_t payload = bytes.size() - kHeaderSize;
  if (payload / kRecordSize < count) {
    result.error = "truncated record stream";
    result.error_record = payload / kRecordSize;  // first incomplete message
    result.error_offset = kHeaderSize + result.error_record * kRecordSize;
    return result;
  }
  if (count * kRecordSize != payload) {
    result.error = "record count disagrees with file size";
    result.error_record = count;
    result.error_offset = kHeaderSize + count * kRecordSize;  // first surplus
    return result;
  }

  result.messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const char* q = bytes.data() + kHeaderSize + i * kRecordSize;
    Message m;
    m.at = TimePoint::from_micros(take<std::int64_t>(q));
    m.src = take<std::uint32_t>(q);
    m.dst = take<std::uint32_t>(q);
    m.conn = take<std::uint32_t>(q);
    m.kind = static_cast<MessageKind>(take<std::uint8_t>(q));
    m.class_id = take<std::uint32_t>(q);
    m.bytes = take<std::uint32_t>(q);
    m.txn = take<std::uint64_t>(q);
    m.visit = take<std::uint64_t>(q);
    m.parent_visit = take<std::uint64_t>(q);
    result.messages.push_back(m);
  }
  result.ok = true;
  return result;
}

CaptureReadResult load_capture(const std::string& path) {
  const MappedFile file = MappedFile::open(path);
  if (!file.ok()) {
    CaptureReadResult result;
    result.error = "cannot open file";
    return result;
  }
  if (file.empty()) return decode_capture(std::string_view{});
  return decode_capture(std::string_view{file.data(), file.size()});
}

}  // namespace tbd::trace
