#include "trace/capture_file.h"

#include <cstring>
#include <fstream>

namespace tbd::trace {

namespace {

constexpr char kMagic[4] = {'T', 'B', 'D', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordSize = 8 + 4 + 4 + 4 + 1 + 4 + 4 + 8 + 8 + 8;

// Little-endian scribblers; portable regardless of host endianness.
template <typename T>
void put(char*& p, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *p++ = static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T take(const char*& p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++)) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

bool save_capture(const std::string& path,
                  const std::vector<Message>& messages) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open()) return false;

  char header[4 + 4 + 8];
  char* p = header;
  std::memcpy(p, kMagic, 4);
  p += 4;
  put<std::uint32_t>(p, kVersion);
  put<std::uint64_t>(p, messages.size());
  out.write(header, sizeof header);

  std::vector<char> buffer;
  buffer.resize(kRecordSize);
  for (const Message& m : messages) {
    p = buffer.data();
    put<std::int64_t>(p, m.at.micros());
    put<std::uint32_t>(p, m.src);
    put<std::uint32_t>(p, m.dst);
    put<std::uint32_t>(p, m.conn);
    put<std::uint8_t>(p, static_cast<std::uint8_t>(m.kind));
    put<std::uint32_t>(p, m.class_id);
    put<std::uint32_t>(p, m.bytes);
    put<std::uint64_t>(p, m.txn);
    put<std::uint64_t>(p, m.visit);
    put<std::uint64_t>(p, m.parent_visit);
    out.write(buffer.data(), static_cast<std::streamsize>(kRecordSize));
  }
  return static_cast<bool>(out);
}

CaptureReadResult load_capture(const std::string& path) {
  CaptureReadResult result;
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in.is_open()) {
    result.error = "cannot open file";
    return result;
  }
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  char header[4 + 4 + 8];
  in.read(header, sizeof header);
  if (in.gcount() != sizeof header) {
    result.error = "truncated header";
    return result;
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    result.error = "bad magic";
    return result;
  }
  const char* p = header + 4;
  const auto version = take<std::uint32_t>(p);
  if (version != kVersion) {
    result.error = "unsupported version";
    return result;
  }
  const auto count = take<std::uint64_t>(p);
  // Validate the count against the file size BEFORE allocating: a corrupt
  // header must not be able to over-allocate (or silently tolerate trailing
  // junk the writer never produced).
  const std::uint64_t payload = file_size - sizeof header;
  if (payload / kRecordSize < count) {
    result.error = "truncated record stream";
    return result;
  }
  if (count * kRecordSize != payload) {
    result.error = "record count disagrees with file size";
    return result;
  }

  result.messages.reserve(count);
  std::vector<char> buffer(kRecordSize);
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(buffer.data(), static_cast<std::streamsize>(kRecordSize));
    if (in.gcount() != static_cast<std::streamsize>(kRecordSize)) {
      result.error = "truncated record stream";
      return result;
    }
    const char* q = buffer.data();
    Message m;
    m.at = TimePoint::from_micros(take<std::int64_t>(q));
    m.src = take<std::uint32_t>(q);
    m.dst = take<std::uint32_t>(q);
    m.conn = take<std::uint32_t>(q);
    m.kind = static_cast<MessageKind>(take<std::uint8_t>(q));
    m.class_id = take<std::uint32_t>(q);
    m.bytes = take<std::uint32_t>(q);
    m.txn = take<std::uint64_t>(q);
    m.visit = take<std::uint64_t>(q);
    m.parent_visit = take<std::uint64_t>(q);
    result.messages.push_back(m);
  }
  result.ok = true;
  return result;
}

}  // namespace tbd::trace
